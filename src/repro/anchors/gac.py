"""The GAC greedy algorithm (Algorithm 6) and its ablated variants.

``greedy_anchored_coreness`` runs ``budget`` greedy iterations; each
iteration evaluates candidate anchors and picks the one with the most
followers. Three accelerations can be toggled independently, giving the
paper's evaluated variants (Table 5):

=============  ============================  =========================
Name           Call                          Paper variant
=============  ============================  =========================
GAC            ``gac(g, b)``                 UB pruning + reuse + Alg 4
GAC-U          ``gac_u(g, b)``               reuse + Alg 4
GAC-U-R        ``gac_u_r(g, b)``             Alg 4 only
Baseline       ``baseline(g, b)``            full core decomposition
                                             per candidate
=============  ============================  =========================

Tie-breaking between equally good anchors is a first-class parameter
(Table 7 studies ``"ub"`` / ``"degree"`` / ``"random"``); ``"id"``
(smallest vertex id) gives fully deterministic runs for testing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Literal

from repro import obs as _obs
from repro.anchors.bounds import UpperBounds, compute_upper_bounds, refined_total
from repro.anchors.followers import (
    FollowerCounters,
    find_followers,
    followers_naive,
)
from repro.anchors.incremental import apply_anchor
from repro.anchors.reuse import FollowerCache
from repro.anchors.state import AnchoredState
from repro.core.decomposition import _sort_key
from repro.errors import BudgetError
from repro.graphs.graph import Graph, Vertex
from repro.verify import enabled as _verify_enabled
from repro.verify import verification as _verification

TieBreak = Literal["ub", "degree", "random", "id"]
FollowerMethod = Literal["tree", "naive"]

# Module attribute (not a direct call site) so tests can monkeypatch the
# clock the deadline checks read.
_clock = _obs.clock


@dataclass
class IterationTrace:
    """Per-greedy-iteration record (drives Figures 12 and 13)."""

    anchor: Vertex
    gain: int
    elapsed_seconds: float
    counters: FollowerCounters
    candidate_count: int


@dataclass
class GreedyResult:
    """Outcome of a greedy anchored-coreness run.

    Attributes:
        anchors: chosen anchors in selection order.
        gains: marginal coreness gain of each anchor at selection time.
        followers: follower set of each anchor at its selection time.
        traces: per-iteration instrumentation.
        truncated: True when a time limit stopped the run early.
    """

    anchors: list[Vertex] = field(default_factory=list)
    gains: list[int] = field(default_factory=list)
    followers: dict[Vertex, frozenset[Vertex]] = field(default_factory=dict)
    traces: list[IterationTrace] = field(default_factory=list)
    truncated: bool = False

    @property
    def total_gain(self) -> int:
        """Total coreness gain ``g(A, G)`` accumulated by the greedy run."""
        return sum(self.gains)

    @property
    def anchor_set(self) -> frozenset[Vertex]:
        return frozenset(self.anchors)

    def total_counters(self) -> FollowerCounters:
        """Instrumentation summed over all iterations."""
        total = FollowerCounters()
        for trace in self.traces:
            total.merge(trace.counters)
        return total


class _SmallestWins:
    """Tie value wrapper: comparing ``a > b`` is true when a's key is smaller."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __gt__(self, other: "_SmallestWins") -> bool:
        return self.key < other.key


def greedy_anchored_coreness(
    graph: Graph,
    budget: int,
    *,
    use_upper_bounds: bool = True,
    reuse: bool = True,
    follower_method: FollowerMethod = "tree",
    tie_break: TieBreak = "ub",
    seed: int | None = None,
    initial_anchors: Iterable[Vertex] = (),
    time_limit: float | None = None,
    verify: bool | None = None,
    obs: bool | None = None,
) -> GreedyResult:
    """Run the greedy heuristic for the anchored coreness problem.

    Args:
        graph: the social network (never mutated).
        budget: number of anchors ``b`` to select.
        use_upper_bounds: prune candidates whose bound cannot beat the
            best gain found so far (Section 4.5).
        reuse: carry per-tree-node follower counts across iterations
            (Section 4.3); ignored when ``follower_method == "naive"``.
        follower_method: ``"tree"`` for Algorithm 4, ``"naive"`` for the
            full-decomposition Baseline.
        tie_break: how equal-gain candidates are ranked (Table 7).
        seed: RNG seed, only used by ``tie_break="random"``.
        initial_anchors: pre-existing anchors (excluded from candidates
            and from gain counting).
        time_limit: optional wall-clock cap in seconds; the run stops
            early with ``truncated=True`` once exceeded. The deadline is
            checked between iterations *and* between candidate
            evaluations inside an iteration, so one expensive iteration
            cannot overshoot the cap unboundedly; an iteration cut off
            mid-scan records no partial winner.
        verify: force the runtime invariant checks on (``True``) or off
            (``False``) for this run; ``None`` defers to ``REPRO_VERIFY``.
        obs: force span tracing on (``True``) or off (``False``) for
            this run; ``None`` defers to ``REPRO_TRACE``. Tracing never
            changes the result — only whether timings are recorded.

    Raises:
        BudgetError: if ``budget`` is negative or exceeds the number of
            non-anchor vertices.
    """
    initial = frozenset(initial_anchors)
    if budget < 0:
        raise BudgetError(f"budget must be non-negative, got {budget}")
    if budget > graph.num_vertices - len(initial):
        raise BudgetError(
            f"budget {budget} exceeds the {graph.num_vertices - len(initial)} "
            "anchorable vertices"
        )
    if follower_method == "naive":
        reuse = False
        use_upper_bounds = False
    rng = random.Random(seed)
    start = _clock()
    with _verification(verify), _obs.tracing(obs), _obs.span("gac.run", budget=budget):
        return _run_greedy(
            graph,
            budget,
            initial=initial,
            use_upper_bounds=use_upper_bounds,
            reuse=reuse,
            follower_method=follower_method,
            tie_break=tie_break,
            rng=rng,
            time_limit=time_limit,
            start=start,
        )


def _run_greedy(
    graph: Graph,
    budget: int,
    *,
    initial: frozenset[Vertex],
    use_upper_bounds: bool,
    reuse: bool,
    follower_method: FollowerMethod,
    tie_break: TieBreak,
    rng: random.Random,
    time_limit: float | None,
    start: float,
) -> GreedyResult:
    """The greedy loop proper (runs inside the verification context)."""

    deadline = None if time_limit is None else start + time_limit
    state = AnchoredState.build(graph, initial)
    # Baseline corenesses: marginal gains are |F(x)| minus the gain x
    # itself accumulated as an earlier anchor's follower — that term
    # leaves the objective when x is anchored (Definition 2.4 excludes
    # anchors), so counting raw |F(x)| would overstate g(A, G).
    base_coreness = dict(state.decomposition.coreness)
    cache = FollowerCache()
    result = GreedyResult()

    for _ in range(budget):
        if deadline is not None and _clock() > deadline:
            result.truncated = True
            break
        iter_start = _clock()
        iter_window = _obs.window()
        with _obs.span("gac.iteration", iteration=len(result.anchors)):
            best, best_gain, expired = _select_best(
                state,
                cache,
                base_coreness=base_coreness,
                use_upper_bounds=use_upper_bounds,
                reuse=reuse,
                follower_method=follower_method,
                tie_break=tie_break,
                rng=rng,
                deadline=deadline,
            )
            if expired:
                result.truncated = True
                break
            if best is None:
                break
            # Pruning soundness: the chosen candidate must be a true argmax
            # over ALL candidates — the upper bound never hid a better one.
            if _verify_enabled():
                from repro.verify.invariants import verify_selection

                verify_selection(state, base_coreness, best, best_gain)
            # The iteration's work counters are the registry delta since
            # the window opened (the registry is the single source; this
            # façade keeps the Figure 13 per-iteration shape).
            counters = FollowerCounters.from_window(iter_window)
            result.anchors.append(best)
            result.gains.append(best_gain)
            # Materializing the chosen anchor's follower set is
            # bookkeeping, not part of the measured candidate search.
            with _obs.suspended():
                result.followers[best] = _follower_set(state, best, follower_method)
            result.traces.append(
                IterationTrace(
                    anchor=best,
                    gain=best_gain,
                    elapsed_seconds=_clock() - iter_start,
                    counters=counters,
                    candidate_count=graph.num_vertices - len(state.anchors),
                )
            )
            _obs.add(_obs.GAC_ITERATIONS)
            # Anchor in place: the paper's local subtree rebuild (Algorithm 3
            # lines 7-10) re-decomposes only the anchored vertex's component.
            removals = apply_anchor(state, best, compute_removals=reuse)
            if reuse:
                cache.apply_removals(removals)
                cache.forget(best)
            else:
                cache.clear()
    if _verify_enabled():
        from repro.verify.invariants import verify_greedy_total

        verify_greedy_total(graph, initial, result.anchors, result.total_gain)
    return result


def _select_best(
    state: AnchoredState,
    cache: FollowerCache,
    *,
    base_coreness: dict[Vertex, int],
    use_upper_bounds: bool,
    reuse: bool,
    follower_method: FollowerMethod,
    tie_break: TieBreak,
    rng: random.Random,
    deadline: float | None = None,
) -> tuple[Vertex | None, int, bool]:
    """One greedy iteration: the candidate with the best marginal gain.

    The marginal gain of anchoring ``x`` is ``|F(x)|`` minus the coreness
    gain ``x`` already contributed as a follower of earlier anchors
    (that contribution leaves ``g(A, G)`` once ``x`` joins ``A``). The
    upper bound dominates ``|F(x)|`` and hence the marginal gain, so
    pruning remains sound.

    Returns ``(best, gain, expired)``. When ``deadline`` passes mid-scan
    the iteration aborts with ``(None, 0, True)`` — a partial winner
    would depend on how far the scan got, i.e. on wall-clock noise, so
    an expired iteration never reports one.
    """
    candidates = state.candidates()
    if not candidates:
        return None, 0, False

    bounds: UpperBounds | None = None
    refined: dict[Vertex, int] = {}
    if use_upper_bounds:
        bounds = compute_upper_bounds(state)
        for u in candidates:
            cached = cache.valid_counts(u, state) if reuse else {}
            refined[u] = refined_total(u, bounds, cached)
        order = sorted(candidates, key=lambda u: (-refined[u], _sort_key(u)))
    else:
        order = sorted(candidates, key=_sort_key)

    tie_of = _tie_function(tie_break, state, refined, rng)
    node_k = {nid: node.k for nid, node in state.tree.nodes.items()}
    best: Vertex | None = None
    best_gain = -1
    best_tie = None
    with _obs.span("gac.candidate_scan", candidates=len(order)):
        for u in order:
            if deadline is not None and _clock() > deadline:
                return None, 0, True
            # Prune strictly below the best gain (the paper prunes <=; the
            # strict form also evaluates potential ties so tie-breaking sees
            # the same candidate pool as the unpruned variants).
            if use_upper_bounds and refined[u] < best_gain:
                _obs.add(_obs.PRUNED_CANDIDATES)
                continue
            if follower_method == "naive":
                follower_count = len(
                    followers_naive(
                        state.graph, u, anchors=state.anchors, base=state.decomposition
                    )
                )
                _obs.add(_obs.EVALUATED_CANDIDATES)
            else:
                cached = cache.valid_counts(u, state) if reuse else None
                report = find_followers(state, u, reusable_counts=cached)
                if reuse:
                    cache.store(report, node_k)
                follower_count = report.total
            own_gain = state.decomposition.coreness[u] - base_coreness[u]
            gain = follower_count - own_gain
            if gain > best_gain:
                best, best_gain, best_tie = u, gain, tie_of(u)
            elif gain == best_gain and best is not None:
                tie = tie_of(u)
                if tie > best_tie:
                    best, best_tie = u, tie
    return best, best_gain, False


def _tie_function(
    tie_break: TieBreak,
    state: AnchoredState,
    refined: dict[Vertex, int],
    rng: random.Random,
) -> Callable[[Vertex], object]:
    if tie_break == "ub":
        # Fall back to degree when bounds were not computed (GAC-U/-U-R).
        if refined:
            return lambda u: refined[u]
        return lambda u: state.graph.degree(u)
    if tie_break == "degree":
        return lambda u: state.graph.degree(u)
    if tie_break == "random":
        return lambda u: rng.random()
    if tie_break == "id":
        return lambda u: _SmallestWins(_sort_key(u))
    raise ValueError(f"unknown tie_break {tie_break!r}")


def _follower_set(
    state: AnchoredState, anchor: Vertex, follower_method: FollowerMethod
) -> frozenset[Vertex]:
    """The exact follower set of the chosen anchor (fresh, no reuse)."""
    if follower_method == "naive":
        return frozenset(
            followers_naive(
                state.graph, anchor, anchors=state.anchors, base=state.decomposition
            )
        )
    return frozenset(find_followers(state, anchor).all_members())


def gac(graph: Graph, budget: int, **kwargs) -> GreedyResult:
    """The full GAC algorithm (upper-bound pruning + result reuse)."""
    return greedy_anchored_coreness(
        graph, budget, use_upper_bounds=True, reuse=True, **kwargs
    )


def gac_u(graph: Graph, budget: int, **kwargs) -> GreedyResult:
    """GAC without upper-bound pruning (paper's GAC-U)."""
    return greedy_anchored_coreness(
        graph, budget, use_upper_bounds=False, reuse=True, **kwargs
    )


def gac_u_r(graph: Graph, budget: int, **kwargs) -> GreedyResult:
    """GAC without pruning or result reuse (paper's GAC-U-R)."""
    return greedy_anchored_coreness(
        graph, budget, use_upper_bounds=False, reuse=False, **kwargs
    )


def baseline(graph: Graph, budget: int, **kwargs) -> GreedyResult:
    """The paper's Baseline: coreness gain via full core decomposition."""
    return greedy_anchored_coreness(graph, budget, follower_method="naive", **kwargs)
