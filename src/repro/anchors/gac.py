"""The GAC greedy algorithm (Algorithm 6) and its ablated variants.

``greedy_anchored_coreness`` runs ``budget`` greedy iterations; each
iteration evaluates candidate anchors and picks the one with the most
followers. Three accelerations can be toggled independently, giving the
paper's evaluated variants (Table 5):

=============  ============================  =========================
Name           Call                          Paper variant
=============  ============================  =========================
GAC            ``gac(g, b)``                 UB pruning + reuse + Alg 4
GAC-U          ``gac_u(g, b)``               reuse + Alg 4
GAC-U-R        ``gac_u_r(g, b)``             Alg 4 only
Baseline       ``baseline(g, b)``            full core decomposition
                                             per candidate
=============  ============================  =========================

Tie-breaking between equally good anchors is a first-class parameter
(Table 7 studies ``"ub"`` / ``"degree"`` / ``"random"``); ``"id"``
(smallest vertex id) gives fully deterministic runs for testing.

The per-round candidate scan can fan out across worker processes
(``workers=`` / ``REPRO_PARALLEL``, via :mod:`repro.parallel`) with
byte-identical results: dispatch is a pure read-only phase over
bound-sorted chunks, and the merge replays the serial scan's pruning,
tie-breaking, counter, and cache updates over the shipped results (see
``docs/parallelism.md``). Serial remains the default and the oracle;
the pool degrades gracefully back to it.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Literal

from repro import checkpoint as _checkpoint  # lint: layer-ok sanctioned persistence hook
from repro import obs as _obs
from repro.anchors import kernels as _kernels
from repro.anchors.bounds import UpperBounds, compute_upper_bounds, refined_total
from repro.anchors.followers import (
    FollowerCounters,
    FollowerReport,
    find_followers,
    followers_naive,
)
from repro.anchors.incremental import apply_anchor
from repro.anchors.reuse import FollowerCache
from repro.anchors.state import AnchoredState
from repro.core.decomposition import _sort_key
from repro.core.tree import NodeId
from repro.errors import BudgetError, CheckpointError
from repro.faults import arming as _fault_arming  # lint: fault-ok layer-ok greedy arms per-run plans
from repro.faults import fault_point as _fault_point  # lint: fault-ok layer-ok hosts gac.round_commit
from repro.graphs.graph import Graph, Vertex
from repro.verify import enabled as _verify_enabled
from repro.verify import verification as _verification

if TYPE_CHECKING:
    from repro.faults import FaultPlan  # lint: fault-ok annotation-only import
    from repro.parallel.pool import CandidateScanPool

TieBreak = Literal["ub", "degree", "random", "id"]
FollowerMethod = Literal["tree", "naive"]

# Module attribute (not a direct call site) so tests can monkeypatch the
# clock the deadline checks read.
_clock = _obs.clock

#: Below this many candidates a process pool costs more than it saves
#: (worker start-up + state rebuild dominate); the greedy stays serial.
#: Module attribute so tests can force pools onto tiny graphs.
_MIN_PARALLEL_CANDIDATES = 64


@dataclass
class IterationTrace:
    """Per-greedy-iteration record (drives Figures 12 and 13)."""

    anchor: Vertex
    gain: int
    elapsed_seconds: float
    counters: FollowerCounters
    candidate_count: int


@dataclass
class GreedyResult:
    """Outcome of a greedy anchored-coreness run.

    Attributes:
        anchors: chosen anchors in selection order.
        gains: marginal coreness gain of each anchor at selection time.
        followers: follower set of each anchor at its selection time.
        traces: per-iteration instrumentation.
        truncated: True when a time limit stopped the run early.
    """

    anchors: list[Vertex] = field(default_factory=list)
    gains: list[int] = field(default_factory=list)
    followers: dict[Vertex, frozenset[Vertex]] = field(default_factory=dict)
    traces: list[IterationTrace] = field(default_factory=list)
    truncated: bool = False

    @property
    def total_gain(self) -> int:
        """Total coreness gain ``g(A, G)`` accumulated by the greedy run."""
        return sum(self.gains)

    @property
    def anchor_set(self) -> frozenset[Vertex]:
        return frozenset(self.anchors)

    def total_counters(self) -> FollowerCounters:
        """Instrumentation summed over all iterations."""
        total = FollowerCounters()
        for trace in self.traces:
            total.merge(trace.counters)
        return total


class _SmallestWins:
    """Tie value wrapper: comparing ``a > b`` is true when a's key is smaller."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __gt__(self, other: "_SmallestWins") -> bool:
        return self.key < other.key


def greedy_anchored_coreness(
    graph: Graph,
    budget: int,
    *,
    use_upper_bounds: bool = True,
    reuse: bool = True,
    follower_method: FollowerMethod = "tree",
    tie_break: TieBreak = "ub",
    seed: int | None = None,
    initial_anchors: Iterable[Vertex] = (),
    time_limit: float | None = None,
    verify: bool | None = None,
    obs: bool | None = None,
    workers: int | None = None,
    kernel: str | None = None,
    faults: "FaultPlan | str | None" = None,
    checkpoint: "str | os.PathLike[str] | None" = None,
    checkpoint_every: int = 1,
    resume: "str | os.PathLike[str] | None" = None,
) -> GreedyResult:
    """Run the greedy heuristic for the anchored coreness problem.

    Args:
        graph: the social network (never mutated).
        budget: number of anchors ``b`` to select.
        use_upper_bounds: prune candidates whose bound cannot beat the
            best gain found so far (Section 4.5).
        reuse: carry per-tree-node follower counts across iterations
            (Section 4.3); ignored when ``follower_method == "naive"``.
        follower_method: ``"tree"`` for Algorithm 4, ``"naive"`` for the
            full-decomposition Baseline.
        tie_break: how equal-gain candidates are ranked (Table 7).
        seed: RNG seed, only used by ``tie_break="random"``.
        initial_anchors: pre-existing anchors (excluded from candidates
            and from gain counting).
        time_limit: optional wall-clock cap in seconds; the run stops
            early with ``truncated=True`` once exceeded. The deadline is
            checked between iterations *and* between candidate
            evaluations inside an iteration, so one expensive iteration
            cannot overshoot the cap unboundedly; an iteration cut off
            mid-scan records no partial winner.
        verify: force the runtime invariant checks on (``True``) or off
            (``False``) for this run; ``None`` defers to ``REPRO_VERIFY``.
        obs: force span tracing on (``True``) or off (``False``) for
            this run; ``None`` defers to ``REPRO_TRACE``. Tracing never
            changes the result — only whether timings are recorded.
        workers: fan the candidate scan across this many worker
            processes (:mod:`repro.parallel`). ``None`` defers to the
            ``REPRO_PARALLEL`` env var; ``0``/``1`` stay serial. The
            result is byte-identical to the serial scan for every
            ``workers`` value — parallelism changes wall-clock only.
            The pool falls back to the serial scan when it cannot help
            (tiny graphs, verification on, no CSR view, spawn failure),
            recording a ``gac.parallel_fallback.*`` gauge.
        kernel: follower-search backend (``dict`` / ``flat`` /
            ``numpy``, see :mod:`repro.anchors.kernels`); ``None``
            defers to ``REPRO_KERNEL`` and then the default. Resolved
            once per run — the whole run, parent and workers, uses one
            concrete backend. Like ``workers`` this is a wall-clock
            knob, never a results knob: outputs are byte-identical
            across backends (and it is deliberately absent from
            checkpoint params, so a resume may switch backends).
        faults: a :class:`repro.faults.FaultPlan` (or spec string) armed
            for this run only; ``None`` defers to ``REPRO_FAULTS``.
        checkpoint: write a round-granular snapshot to this path (see
            :mod:`repro.checkpoint`) after each committed round. A
            failed write never kills the run — it is gauged as
            ``gac.checkpoint.write_error`` and the run continues.
        checkpoint_every: write the snapshot every this-many rounds
            (the final round is always written).
        resume: continue from a snapshot previously written by
            ``checkpoint``. The resumed run is byte-identical — anchors,
            gains, RNG stream, Figure-13 counters — to the uninterrupted
            run with the same parameters; a snapshot from a different
            graph, algorithm, or parameter set aborts with
            :class:`~repro.errors.CheckpointError`. ``budget`` may
            exceed the snapshot's (the run extends it).

    Raises:
        BudgetError: if ``budget`` is negative or exceeds the number of
            non-anchor vertices.
        CheckpointError: if ``resume`` names a missing, corrupt, or
            mismatched snapshot.
    """
    initial = frozenset(initial_anchors)
    if budget < 0:
        raise BudgetError(f"budget must be non-negative, got {budget}")
    if budget > graph.num_vertices - len(initial):
        raise BudgetError(
            f"budget {budget} exceeds the {graph.num_vertices - len(initial)} "
            "anchorable vertices"
        )
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if follower_method == "naive":
        reuse = False
        use_upper_bounds = False
    rng = random.Random(seed)
    start = _clock()
    with (
        _fault_arming(faults),
        _verification(verify),
        _obs.tracing(obs),
        _obs.span("gac.run", budget=budget),
    ):
        # Resolve the backend once, against the actual graph: the whole
        # run — every candidate evaluation, in the parent and in every
        # worker — agrees on one concrete name.
        kernel_name = _kernels.resolve_kernel(kernel, graph=graph)
        return _run_greedy(
            graph,
            budget,
            initial=initial,
            use_upper_bounds=use_upper_bounds,
            reuse=reuse,
            follower_method=follower_method,
            tie_break=tie_break,
            rng=rng,
            seed=seed,
            time_limit=time_limit,
            start=start,
            workers=workers,
            kernel=kernel_name,
            checkpoint_path=checkpoint,
            checkpoint_every=checkpoint_every,
            resume_path=resume,
        )


def _run_greedy(
    graph: Graph,
    budget: int,
    *,
    initial: frozenset[Vertex],
    use_upper_bounds: bool,
    reuse: bool,
    follower_method: FollowerMethod,
    tie_break: TieBreak,
    rng: random.Random,
    seed: int | None,
    time_limit: float | None,
    start: float,
    workers: int | None,
    kernel: str = _kernels.DEFAULT_KERNEL,
    checkpoint_path: "str | os.PathLike[str] | None" = None,
    checkpoint_every: int = 1,
    resume_path: "str | os.PathLike[str] | None" = None,
) -> GreedyResult:
    """The greedy loop proper (runs inside the verification context)."""

    deadline = None if time_limit is None else start + time_limit
    cache = FollowerCache()
    result = GreedyResult()
    fingerprint = ""
    params: dict[str, object] = {}
    if checkpoint_path is not None or resume_path is not None:
        fingerprint = _checkpoint.graph_fingerprint(graph)
        # budget and workers are deliberately absent: a resume may extend
        # the budget, and worker count is a wall-clock knob, never a
        # results knob. seed is kept — it documents the rng_state's origin
        # and lets the resume-replay invariant rerun the prefix.
        params = {
            "use_upper_bounds": use_upper_bounds,
            "reuse": reuse,
            "follower_method": follower_method,
            "tie_break": tie_break,
            "seed": seed,
            "initial": sorted(initial, key=_sort_key),
        }
    if resume_path is not None:
        base_coreness = _resume(
            graph,
            budget,
            resume_path,
            fingerprint=fingerprint,
            params=params,
            result=result,
            rng=rng,
            cache=cache,
        )
        # Rebuilding from scratch with the checkpointed anchors equals
        # the incremental state the killed run held: every derived
        # structure (decomposition, tree node ids, adjacency) is
        # deterministic given graph + anchor set — the same contract the
        # parallel workers rely on each epoch.
        state = AnchoredState.build(graph, initial | frozenset(result.anchors))
        if _verify_enabled():
            from repro.verify.invariants import verify_resume_replay

            verify_resume_replay(
                graph,
                initial,
                result.anchors,
                result.gains,
                use_upper_bounds=use_upper_bounds,
                reuse=reuse,
                follower_method=follower_method,
                tie_break=tie_break,
                seed=seed,
            )
    else:
        state = AnchoredState.build(graph, initial)
        # Baseline corenesses: marginal gains are |F(x)| minus the gain x
        # itself accumulated as an earlier anchor's follower — that term
        # leaves the objective when x is anchored (Definition 2.4 excludes
        # anchors), so counting raw |F(x)| would overstate g(A, G).
        base_coreness = dict(state.decomposition.coreness)
    pool: "CandidateScanPool | None" = None
    if budget > len(result.anchors):
        pool = _make_pool(
            graph, workers, follower_method, graph.num_vertices - len(initial)
        )
    # Anchor lineage in application order: sorted initial anchors, then
    # selections as they happen. Workers key their persistent state
    # caches on it — a lineage that merely *extends* the previous round's
    # replays incremental anchor deltas instead of a full rebuild. Only
    # the underlying set matters for correctness; the order is purely a
    # cache key.
    initial_sorted = tuple(sorted(initial, key=_sort_key))

    try:
        while len(result.anchors) < budget:
            if deadline is not None and _clock() > deadline:
                result.truncated = True
                break
            iter_start = _clock()
            iter_window = _obs.window()
            with _obs.span("gac.iteration", iteration=len(result.anchors)):
                best, best_gain, expired = _select_best(
                    state,
                    cache,
                    base_coreness=base_coreness,
                    use_upper_bounds=use_upper_bounds,
                    reuse=reuse,
                    follower_method=follower_method,
                    tie_break=tie_break,
                    rng=rng,
                    deadline=deadline,
                    pool=pool,
                    lineage=initial_sorted + tuple(result.anchors),
                    kernel=kernel,
                )
                if pool is not None and pool.broken:
                    # A worker died or a dispatch failed: the scan already
                    # fell back to serial for this round; stay serial for
                    # the rest of the run rather than respawning.
                    pool.close()
                    pool = None
                if expired:
                    result.truncated = True
                    break
                if best is None:
                    break
                # Pruning soundness: the chosen candidate must be a true argmax
                # over ALL candidates — the upper bound never hid a better one.
                if _verify_enabled():
                    from repro.verify.invariants import verify_selection

                    verify_selection(state, base_coreness, best, best_gain)
                # The iteration's work counters are the registry delta since
                # the window opened (the registry is the single source; this
                # façade keeps the Figure 13 per-iteration shape).
                counters = FollowerCounters.from_window(iter_window)
                result.anchors.append(best)
                result.gains.append(best_gain)
                # Materializing the chosen anchor's follower set is
                # bookkeeping, not part of the measured candidate search.
                with _obs.suspended():
                    result.followers[best] = _follower_set(
                        state, best, follower_method, kernel
                    )
                result.traces.append(
                    IterationTrace(
                        anchor=best,
                        gain=best_gain,
                        elapsed_seconds=_clock() - iter_start,
                        counters=counters,
                        candidate_count=graph.num_vertices - len(state.anchors),
                    )
                )
                _obs.add(_obs.GAC_ITERATIONS)
                # Anchor in place: the paper's local subtree rebuild (Algorithm 3
                # lines 7-10) re-decomposes only the anchored vertex's component.
                removals = apply_anchor(state, best, compute_removals=reuse)
                if reuse:
                    cache.apply_removals(removals)
                    cache.forget(best)
                else:
                    cache.clear()
                # The round is committed: state, cache, counters, and RNG
                # all reflect it. Snapshot here — and only here — so a
                # resume continues from a boundary, never mid-round.
                if checkpoint_path is not None and (
                    len(result.anchors) % checkpoint_every == 0
                    or len(result.anchors) == budget
                ):
                    _write_checkpoint(
                        checkpoint_path,
                        fingerprint=fingerprint,
                        params=params,
                        result=result,
                        rng=rng,
                        cache=cache,
                        base_coreness=base_coreness,
                    )
                _fault_point("gac.round_commit")
    finally:
        if pool is not None:
            pool.close()
    if _verify_enabled():
        from repro.verify.invariants import verify_greedy_total

        verify_greedy_total(graph, initial, result.anchors, result.total_gain)
    return result


def _resume(
    graph: Graph,
    budget: int,
    resume_path: "str | os.PathLike[str]",
    *,
    fingerprint: str,
    params: dict[str, object],
    result: GreedyResult,
    rng: random.Random,
    cache: FollowerCache,
) -> dict[Vertex, int]:
    """Rehydrate a round-boundary snapshot into the run's mutable state.

    Returns the baseline corenesses the killed run measured gains
    against. Everything that shapes the remaining rounds — selections so
    far, the RNG stream position, the Algorithm-3 cache — is restored
    exactly, so the continuation replays the uninterrupted trajectory.
    """
    snapshot = _checkpoint.load(resume_path)
    _checkpoint.validate(
        snapshot, algo="gac", fingerprint=fingerprint, params=params
    )
    payload = snapshot.payload
    try:
        anchors = list(payload["anchors"])
        if len(anchors) > budget:
            raise CheckpointError(
                f"checkpoint already holds {len(anchors)} anchors, more than "
                f"the budget {budget} of the resuming run"
            )
        result.anchors = anchors
        result.gains = list(payload["gains"])
        result.followers = dict(payload["followers"])
        result.traces = [
            IterationTrace(
                anchor=trace["anchor"],
                gain=trace["gain"],
                elapsed_seconds=trace["elapsed_seconds"],
                counters=FollowerCounters(**trace["counters"]),
                candidate_count=trace["candidate_count"],
            )
            for trace in payload["traces"]
        ]
        rng.setstate(payload["rng_state"])
        cache.entries = {
            u: dict(counts) for u, counts in payload["cache_entries"].items()
        }
        return dict(payload["base_coreness"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint payload is incomplete or malformed: {exc!r}"
        ) from exc


def _write_checkpoint(
    path: "str | os.PathLike[str]",
    *,
    fingerprint: str,
    params: dict[str, object],
    result: GreedyResult,
    rng: random.Random,
    cache: FollowerCache,
    base_coreness: dict[Vertex, int],
) -> None:
    """Snapshot the committed round; a failed write is gauged, never fatal."""
    payload: dict[str, object] = {
        "anchors": list(result.anchors),
        "gains": list(result.gains),
        "followers": dict(result.followers),
        "traces": [
            {
                "anchor": trace.anchor,
                "gain": trace.gain,
                "elapsed_seconds": trace.elapsed_seconds,
                "counters": dict(vars(trace.counters)),
                "candidate_count": trace.candidate_count,
            }
            for trace in result.traces
        ],
        "rng_state": rng.getstate(),
        "cache_entries": {u: dict(counts) for u, counts in cache.entries.items()},
        "base_coreness": dict(base_coreness),
    }
    try:
        _checkpoint.save(
            path,
            _checkpoint.Checkpoint(
                algo="gac", fingerprint=fingerprint, params=params, payload=payload
            ),
        )
    except Exception:
        # The checkpoint exists to protect the run; a failed write must
        # not be the thing that kills it. Gauged for diagnosability.
        _obs.gauge("gac.checkpoint.write_error", 1.0)


def _select_best(
    state: AnchoredState,
    cache: FollowerCache,
    *,
    base_coreness: dict[Vertex, int],
    use_upper_bounds: bool,
    reuse: bool,
    follower_method: FollowerMethod,
    tie_break: TieBreak,
    rng: random.Random,
    deadline: float | None = None,
    pool: "CandidateScanPool | None" = None,
    lineage: tuple[Vertex, ...] = (),
    kernel: str = _kernels.DEFAULT_KERNEL,
) -> tuple[Vertex | None, int, bool]:
    """One greedy iteration: the candidate with the best marginal gain.

    The marginal gain of anchoring ``x`` is ``|F(x)|`` minus the coreness
    gain ``x`` already contributed as a follower of earlier anchors
    (that contribution leaves ``g(A, G)`` once ``x`` joins ``A``). The
    upper bound dominates ``|F(x)|`` and hence the marginal gain, so
    pruning remains sound.

    Returns ``(best, gain, expired)``. When ``deadline`` passes mid-scan
    the iteration aborts with ``(None, 0, True)`` — a partial winner
    would depend on how far the scan got, i.e. on wall-clock noise, so
    an expired iteration never reports one.

    When ``pool`` is given the scan is dispatched to worker processes
    (:func:`_scan_parallel`); any failure there falls back to the serial
    scan with no state mutated, so the result is unchanged either way.
    """
    candidates = state.candidates()
    if not candidates:
        return None, 0, False

    bounds: UpperBounds | None = None
    refined: dict[Vertex, int] = {}
    if use_upper_bounds:
        bounds = compute_upper_bounds(state)
        for u in candidates:
            cached = cache.valid_counts(u, state) if reuse else {}
            refined[u] = refined_total(u, bounds, cached)
        order = sorted(candidates, key=lambda u: (-refined[u], _sort_key(u)))
    else:
        order = sorted(candidates, key=_sort_key)

    tie_of = _tie_function(tie_break, state, refined, rng)
    node_k = state.node_k()
    with _obs.span("gac.candidate_scan", candidates=len(order)):
        if pool is not None and not pool.broken:
            outcome = _scan_parallel(
                state,
                cache,
                pool,
                order=order,
                refined=refined,
                use_upper_bounds=use_upper_bounds,
                reuse=reuse,
                follower_method=follower_method,
                tie_of=tie_of,
                node_k=node_k,
                base_coreness=base_coreness,
                deadline=deadline,
                lineage=lineage,
                kernel=kernel,
            )
            if outcome is not None:
                return outcome
        return _scan_serial(
            state,
            cache,
            order=order,
            refined=refined,
            use_upper_bounds=use_upper_bounds,
            reuse=reuse,
            follower_method=follower_method,
            tie_of=tie_of,
            node_k=node_k,
            base_coreness=base_coreness,
            deadline=deadline,
            kernel=kernel,
        )


def _scan_serial(
    state: AnchoredState,
    cache: FollowerCache,
    *,
    order: list[Vertex],
    refined: dict[Vertex, int],
    use_upper_bounds: bool,
    reuse: bool,
    follower_method: FollowerMethod,
    tie_of: Callable[[Vertex], object],
    node_k: dict[NodeId, int],
    base_coreness: dict[Vertex, int],
    deadline: float | None,
    kernel: str = _kernels.DEFAULT_KERNEL,
) -> tuple[Vertex | None, int, bool]:
    """The serial candidate scan — the oracle the parallel scan must match."""
    best: Vertex | None = None
    best_gain = -1
    best_tie = None
    for u in order:
        if deadline is not None and _clock() > deadline:
            return None, 0, True
        # Prune strictly below the best gain (the paper prunes <=; the
        # strict form also evaluates potential ties so tie-breaking sees
        # the same candidate pool as the unpruned variants).
        if use_upper_bounds and refined[u] < best_gain:
            _obs.add(_obs.PRUNED_CANDIDATES)
            continue
        if follower_method == "naive":
            follower_count = len(
                followers_naive(
                    state.graph, u, anchors=state.anchors, base=state.decomposition
                )
            )
            _obs.add(_obs.EVALUATED_CANDIDATES)
        else:
            cached = cache.valid_counts(u, state) if reuse else None
            report = find_followers(state, u, reusable_counts=cached, kernel=kernel)
            if reuse:
                cache.store(report, node_k)
            follower_count = report.total
        own_gain = state.decomposition.coreness[u] - base_coreness[u]
        gain = follower_count - own_gain
        if gain > best_gain:
            best, best_gain, best_tie = u, gain, tie_of(u)
        elif gain == best_gain and best is not None:
            tie = tie_of(u)
            if tie > best_tie:
                best, best_tie = u, tie
    return best, best_gain, False


def _scan_parallel(
    state: AnchoredState,
    cache: FollowerCache,
    pool: "CandidateScanPool",
    *,
    order: list[Vertex],
    refined: dict[Vertex, int],
    use_upper_bounds: bool,
    reuse: bool,
    follower_method: FollowerMethod,
    tie_of: Callable[[Vertex], object],
    node_k: dict[NodeId, int],
    base_coreness: dict[Vertex, int],
    deadline: float | None,
    lineage: tuple[Vertex, ...] = (),
    kernel: str = _kernels.DEFAULT_KERNEL,
) -> tuple[Vertex | None, int, bool] | None:
    """Dispatch the candidate scan to the pool, then replay the serial merge.

    Phase A ships bound-sorted chunks of candidates to the workers.
    Between chunk barriers a *simulated* best gain advances exactly like
    the serial scan's threshold, so a chunk only dispatches candidates
    whose bound still clears it. The threshold at a candidate's chunk
    start is a lower bound on the serial scan's threshold when it
    reaches that candidate (gains of bound-pruned candidates can never
    raise the running maximum), hence every candidate the serial scan
    evaluates is provably in the dispatched set — the speculative extras
    are discarded unmerged. Phase A is read-only: it mutates neither the
    cache nor the registry (dispatch-side validations run suspended), so
    any failure can simply return ``None`` and let the serial scan run.

    Phase B replays the serial loop over the shipped results: identical
    pruning threshold, identical tie-break sequence (including RNG
    consumption), identical cache stores, and the workers' counter
    deltas merged into the parent registry — all inside the caller's
    iteration window, so Figure 13 totals match the serial scan's.
    """
    epoch = len(state.anchors)
    # The lineage is the cache key workers use; its *set* is what
    # evaluation depends on. A caller that did not thread one (tests
    # driving the scan directly) degrades to a sorted tuple — workers
    # fall back to full rebuilds, results unchanged.
    anchors = (
        lineage
        if len(lineage) == len(state.anchors) and frozenset(lineage) == state.anchors
        else tuple(sorted(state.anchors, key=_sort_key))
    )
    coreness = state.decomposition.coreness
    # The speculative window between threshold barriers adapts to the
    # pool's measured per-task latency; window size steers wall-clock
    # only (the replay discards speculative extras), never results.
    chunk_size = pool.dispatch_size() if use_upper_bounds else len(order)
    # candidate -> (marginal gain, per-node counts | None, counter deltas)
    evaluated: dict[Vertex, tuple[int, dict[NodeId, int] | None, dict[str, int]]] = {}
    reusable_of: dict[Vertex, dict[NodeId, int] | None] = {}
    sim_best = -1
    chunk_count = 0
    shipped_base = pool.spans_shipped
    with _obs.span(
        "gac.parallel_scan", candidates=len(order), workers=pool.workers
    ) as sp:
        try:
            for chunk_start in range(0, len(order), chunk_size):
                if deadline is not None and _clock() > deadline:
                    return None, 0, True
                chunk = order[chunk_start : chunk_start + chunk_size]
                tasks: list[tuple[Vertex, dict[NodeId, int] | None]] = []
                for u in chunk:
                    if use_upper_bounds and refined[u] < sim_best:
                        continue
                    if reuse:
                        # Validation must not count: phase B replays the
                        # REUSE_SERVED adds in serial order.
                        with _obs.suspended():
                            reusable = cache.valid_counts(u, state)
                    else:
                        reusable = None
                    reusable_of[u] = reusable
                    tasks.append((u, reusable))
                if tasks:
                    chunk_count += 1
                    for candidate, total, counts, deltas in pool.evaluate(
                        epoch, anchors, tasks, kernel=kernel
                    ):
                        own_gain = coreness[candidate] - base_coreness[candidate]
                        evaluated[candidate] = (total - own_gain, counts, deltas)
                if use_upper_bounds:
                    # Advance the threshold exactly as phase B will: gains
                    # of candidates phase B prunes are below it already.
                    for u in chunk:
                        entry = evaluated.get(u)
                        if entry is not None and entry[0] > sim_best:
                            sim_best = entry[0]
        except Exception:
            # Nothing was mutated; the caller reruns the scan serially.
            pool.broken = True
            _obs.gauge("gac.parallel_fallback.scan_error", 1.0)
            return None

        best: Vertex | None = None
        best_gain = -1
        best_tie = None
        pending: dict[str, int] = {}

        def _defer(name: str, value: int = 1) -> None:
            pending[name] = pending.get(name, 0) + value

        for u in order:
            if use_upper_bounds and refined[u] < best_gain:
                _defer(_obs.PRUNED_CANDIDATES)
                continue
            gain, counts, deltas = evaluated[u]
            for name, value in deltas.items():
                _defer(name, value)
            reusable = reusable_of.get(u)
            if reusable:
                _defer(_obs.REUSE_SERVED, len(reusable))
            if follower_method == "naive":
                # The worker's delta has the decomposition counters; the
                # serial scan adds this one itself after the oracle call.
                _defer(_obs.EVALUATED_CANDIDATES)
            elif reuse and counts is not None:
                cache.store(FollowerReport.from_counts(u, counts), node_k)
            if gain > best_gain:
                best, best_gain, best_tie = u, gain, tie_of(u)
            elif gain == best_gain and best is not None:
                tie = tie_of(u)
                if tie > best_tie:
                    best, best_tie = u, tie
        for name in sorted(pending):
            _obs.add(name, pending[name])
        if isinstance(sp, _obs.Span):
            sp.args["tasks"] = len(evaluated)
            sp.args["chunks"] = chunk_count
            # Worker spans merged into this scan's trace (they land in
            # per-worker pid lanes next to this span's parent lane).
            sp.args["shipped_spans"] = pool.spans_shipped - shipped_base
    return best, best_gain, False


def _make_pool(
    graph: Graph,
    workers: int | None,
    follower_method: FollowerMethod,
    candidate_count: int,
) -> "CandidateScanPool | None":
    """Build a candidate-scan pool, or return ``None`` to stay serial.

    Every fallback records a ``gac.parallel_fallback.<reason>`` gauge so
    a run that silently stayed serial is diagnosable after the fact.
    The import is lazy: the serial default never touches
    :mod:`multiprocessing`.
    """
    if workers is not None and workers <= 1:
        if workers == 1:
            _obs.gauge("gac.parallel_fallback.single_worker", 1.0)
        return None
    if workers is None and not os.environ.get("REPRO_PARALLEL", "").strip():
        return None
    from repro.parallel import CandidateScanPool, PoolUnavailable, resolve_workers

    count = resolve_workers(workers)
    if count <= 0:
        return None
    if count == 1:
        _obs.gauge("gac.parallel_fallback.single_worker", 1.0)
        return None
    if _verify_enabled():
        # Verification oracles run inside worker evaluations and would be
        # skipped there; keep verified runs on the fully checked path.
        _obs.gauge("gac.parallel_fallback.verify", 1.0)
        return None
    if candidate_count < _MIN_PARALLEL_CANDIDATES:
        _obs.gauge("gac.parallel_fallback.small_graph", 1.0)
        return None
    try:
        return CandidateScanPool(graph, count, follower_method=follower_method)
    except PoolUnavailable:
        _obs.gauge("gac.parallel_fallback.unavailable", 1.0)
        return None
    except OSError:
        _obs.gauge("gac.parallel_fallback.spawn_error", 1.0)
        return None


def _tie_function(
    tie_break: TieBreak,
    state: AnchoredState,
    refined: dict[Vertex, int],
    rng: random.Random,
) -> Callable[[Vertex], object]:
    if tie_break == "ub":
        # Fall back to degree when bounds were not computed (GAC-U/-U-R).
        if refined:
            return lambda u: refined[u]
        return lambda u: state.graph.degree(u)
    if tie_break == "degree":
        return lambda u: state.graph.degree(u)
    if tie_break == "random":
        return lambda u: rng.random()
    if tie_break == "id":
        return lambda u: _SmallestWins(_sort_key(u))
    raise ValueError(f"unknown tie_break {tie_break!r}")


def _follower_set(
    state: AnchoredState,
    anchor: Vertex,
    follower_method: FollowerMethod,
    kernel: str = _kernels.DEFAULT_KERNEL,
) -> frozenset[Vertex]:
    """The exact follower set of the chosen anchor (fresh, no reuse)."""
    if follower_method == "naive":
        return frozenset(
            followers_naive(
                state.graph, anchor, anchors=state.anchors, base=state.decomposition
            )
        )
    return frozenset(find_followers(state, anchor, kernel=kernel).all_members())


def gac(graph: Graph, budget: int, **kwargs) -> GreedyResult:
    """The full GAC algorithm (upper-bound pruning + result reuse)."""
    return greedy_anchored_coreness(
        graph, budget, use_upper_bounds=True, reuse=True, **kwargs
    )


def gac_u(graph: Graph, budget: int, **kwargs) -> GreedyResult:
    """GAC without upper-bound pruning (paper's GAC-U)."""
    return greedy_anchored_coreness(
        graph, budget, use_upper_bounds=False, reuse=True, **kwargs
    )


def gac_u_r(graph: Graph, budget: int, **kwargs) -> GreedyResult:
    """GAC without pruning or result reuse (paper's GAC-U-R)."""
    return greedy_anchored_coreness(
        graph, budget, use_upper_bounds=False, reuse=False, **kwargs
    )


def baseline(graph: Graph, budget: int, **kwargs) -> GreedyResult:
    """The paper's Baseline: coreness gain via full core decomposition."""
    return greedy_anchored_coreness(graph, budget, follower_method="naive", **kwargs)
