"""Swap-based local search to polish a greedy anchor set.

Greedy solutions of non-submodular objectives can sit in shallow local
optima; the cheapest escape is the classic 1-swap neighborhood: replace
one anchor with one non-anchor whenever that strictly increases the
coreness gain, until no improving swap exists. The result is
swap-optimal and never worse than the input set.

Each swap trial costs one core decomposition, so the search is meant to
*polish* a small anchor set (the greedy output), not to run from
scratch. Candidate replacements can be limited to the most promising
vertices (by single-anchor upper bound) to keep trials focused.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anchors.bounds import compute_upper_bounds
from repro.anchors.state import AnchoredState
from repro.core.decomposition import _sort_key, core_decomposition, coreness_gain
from repro.graphs.graph import Graph, Vertex
from repro.obs import clock as _clock


@dataclass
class LocalSearchResult:
    """Outcome of the swap polish.

    Attributes:
        anchors: the final anchor set (same size as the input).
        initial_gain / final_gain: g(A, G) before and after.
        swaps: the improving swaps applied, as (out, in) pairs.
        trials: number of candidate swaps evaluated.
    """

    anchors: list[Vertex] = field(default_factory=list)
    initial_gain: int = 0
    final_gain: int = 0
    swaps: list[tuple[Vertex, Vertex]] = field(default_factory=list)
    trials: int = 0
    elapsed_seconds: float = 0.0

    @property
    def improvement(self) -> int:
        return self.final_gain - self.initial_gain


def local_search_polish(
    graph: Graph,
    anchors: list[Vertex],
    candidate_pool: int = 30,
    max_rounds: int = 10,
) -> LocalSearchResult:
    """Improve an anchor set by 1-swaps until swap-optimal (or capped).

    Args:
        graph: the social network.
        anchors: the starting anchor set (e.g. a GAC result).
        candidate_pool: how many top non-anchor vertices (by the
            follower upper bound) are tried as replacements each round.
        max_rounds: cap on full improvement passes.

    Returns:
        A :class:`LocalSearchResult`; ``final_gain >= initial_gain``.
    """
    start = _clock()
    current = list(dict.fromkeys(anchors))  # dedupe, keep order
    base = core_decomposition(graph)
    result = LocalSearchResult(
        anchors=current,
        initial_gain=coreness_gain(graph, current, base=base),
    )
    current_gain = result.initial_gain

    for _ in range(max_rounds):
        improved = False
        state = AnchoredState.build(graph, current)
        bounds = compute_upper_bounds(state)
        pool = sorted(
            state.candidates(),
            key=lambda u: (-bounds.total.get(u, 0), _sort_key(u)),
        )[:candidate_pool]
        for out_anchor in list(current):
            for in_anchor in pool:
                if in_anchor in current:
                    continue
                trial_set = [
                    in_anchor if a == out_anchor else a for a in current
                ]
                result.trials += 1
                trial_gain = coreness_gain(graph, trial_set, base=base)
                if trial_gain > current_gain:
                    current = trial_set
                    current_gain = trial_gain
                    result.swaps.append((out_anchor, in_anchor))
                    improved = True
                    break
            if improved:
                break  # recompute state/pool after every applied swap
        if not improved:
            break

    result.anchors = current
    result.final_gain = current_gain
    result.elapsed_seconds = _clock() - start
    return result
