"""Follower computation for a candidate anchor (Algorithms 4 and 5).

Anchoring ``x`` raises the coreness of its *followers* by exactly one
(Theorem 4.6). ``find_followers`` computes them without re-running core
decomposition: for each tree node adjacent to ``x`` (Theorem 4.7), it
explores only the candidate followers reachable via upstair paths
(Theorem 4.14), in a min-heap ordered by shell-layer pair, discarding
candidates whose degree bound falls below ``c(u) + 1`` (Theorem 4.15)
with a cascading shrink (Algorithm 5).

The per-node exploration itself lives in :mod:`repro.anchors.kernels`
behind interchangeable backends (``dict`` / ``flat`` / ``numpy``); this
module owns everything around it — node iteration order, reuse, the
Figure-13 counters, verification — which is why the backends are
byte-identical by construction on those observables.

``followers_naive`` is the brute-force oracle (two full decompositions);
the test suite asserts both agree on randomized graphs.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping
from dataclasses import dataclass, field

from repro import obs as _obs
from repro.anchors import kernels as _kernels
from repro.anchors.state import AnchoredState
from repro.core.decomposition import CoreDecomposition, _sort_key, core_decomposition
from repro.core.tree import NodeId
from repro.graphs.graph import Graph, Vertex
from repro.lint.markers import pure
from repro.verify import enabled as _verify_enabled


@dataclass
class FollowerCounters:
    """Instrumentation matching the paper's Figure 13 measurements.

    Since the :mod:`repro.obs` registry became the single home for work
    counters this class is a thin façade kept for API compatibility:
    the search code reports into the registry, and per-scope values are
    read back out through :meth:`from_window` (a registry delta). The
    explicit ``counters=`` accumulator threaded through
    :func:`find_followers` still works for callers that want a local
    tally without scoping a window.
    """

    explored_nodes: int = 0  # tree nodes searched from scratch
    reused_nodes: int = 0  # tree nodes answered from the cache
    visited_vertices: int = 0  # heap pops across all explorations
    pruned_candidates: int = 0  # candidates skipped by the upper bound
    evaluated_candidates: int = 0  # candidates whose followers were computed

    def merge(self, other: "FollowerCounters") -> None:
        self.explored_nodes += other.explored_nodes
        self.reused_nodes += other.reused_nodes
        self.visited_vertices += other.visited_vertices
        self.pruned_candidates += other.pruned_candidates
        self.evaluated_candidates += other.evaluated_candidates

    @classmethod
    def from_window(cls, window: _obs.Window) -> "FollowerCounters":
        """The counters accumulated in the registry since ``window`` opened."""
        return cls(
            explored_nodes=window.counter(_obs.EXPLORED_NODES),
            reused_nodes=window.counter(_obs.REUSED_NODES),
            visited_vertices=window.counter(_obs.VISITED_VERTICES),
            pruned_candidates=window.counter(_obs.PRUNED_CANDIDATES),
            evaluated_candidates=window.counter(_obs.EVALUATED_CANDIDATES),
        )


@dataclass
class FollowerReport:
    """Per-tree-node follower counts for one candidate anchor.

    ``counts[id]`` is ``|F[x][id]|``; ``members[id]`` holds the actual
    follower set when the node was explored this call (reused nodes only
    have their cached count — the paper's cache stores counts, not sets).
    """

    anchor: Vertex
    counts: dict[NodeId, int] = field(default_factory=dict)
    members: dict[NodeId, set[Vertex]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """``|F(x)| = g({x})`` — the coreness gain of anchoring ``x``."""
        return sum(self.counts.values())

    @classmethod
    def from_counts(cls, anchor: Vertex, counts: Mapping[NodeId, int]) -> "FollowerReport":
        """Rehydrate a report from per-node counts alone (no member sets).

        The shape a candidate-scan worker ships back to the parent: the
        reuse cache stores counts only (like the paper's), so a shipped
        report is as storable as a locally computed one.
        """
        return cls(anchor=anchor, counts=dict(counts))

    def all_members(self) -> set[Vertex]:
        """Union of explored follower sets (valid when nothing was reused)."""
        result: set[Vertex] = set()
        for group in self.members.values():  # lint: order-ok set union is commutative
            result |= group
        return result


@pure
def find_followers(
    state: AnchoredState,
    x: Vertex,
    reusable_counts: Mapping[NodeId, int] | None = None,
    counters: FollowerCounters | None = None,
    only_coreness: int | None = None,
    kernel: str | None = None,
) -> FollowerReport:
    """Compute ``F[x][id]`` for every node ``id`` in ``sn(x)`` (Algorithm 4).

    Args:
        state: current anchored state (``x`` must not already be anchored).
        x: the candidate anchor.
        reusable_counts: validated cache entries ``{node id: |F[x][id]|}``
            from the previous greedy iteration; those nodes are not
            re-explored (Section 4.3 / "Reusing Followers").
        counters: optional instrumentation accumulator.
        only_coreness: when set, restrict the search to tree nodes with
            exactly this coreness (per-node explorations are independent,
            so skipping nodes is sound). OLAK uses this to search only
            the (k-1)-shell.
        kernel: follower-search backend (``dict`` / ``flat`` / ``numpy``);
            ``None`` reads ``REPRO_KERNEL`` and falls back to the
            default. Backends differ in wall-clock only — follower sets
            and counters are byte-identical (``docs/kernels.md``).

    Returns:
        A :class:`FollowerReport` whose total is the coreness gain of
        anchoring ``x`` on top of the current anchors (restricted to the
        selected shell when ``only_coreness`` is given).
    """
    if x in state.anchors:
        raise ValueError(f"candidate {x!r} is already anchored")
    report = FollowerReport(anchor=x)
    own_node = state.node_id(x)
    # Cached kernel tables prove the graph has a CSR view: skip the
    # per-call view lookup on the hot path (GAC calls this once per
    # evaluated candidate).
    name = _kernels.resolve_kernel(
        kernel, graph=None if state.kernel_tables is not None else state.graph
    )
    with _obs.span(f"followers.search[{name}]", anchor=x):
        tables = state.kernel_tables
        fresh_tables = (
            tables is not None
            and name != "dict"
            and tables.decomposition is state.decomposition
            and tables.anchors is state.anchors
        )
        if fresh_tables:
            # Current tables (same identity guard as ``tables_for``)
            # carry ``sn(x)`` presorted per id: ascending interned id is
            # the canonical vertex_sort_key order, so this is the keyed
            # sort below, precomputed.
            order: "Collection[NodeId]" = tables.sn_ids[tables.index[x]]
        else:
            order = sorted(state.sn(x), key=_sort_key)
        reused = visited = 0
        todo: list[tuple[NodeId, bool]] = []
        for nid in order:
            if only_coreness is not None and state.tree.nodes[nid].k != only_coreness:
                continue
            if reusable_counts is not None and nid in reusable_counts:
                report.counts[nid] = reusable_counts[nid]
                reused += 1
                continue
            todo.append((nid, nid == own_node))
        # A fully-reused candidate (every node answered from the cache)
        # never touches the backend at all; otherwise the backend gets
        # the surviving node list in one batched call so it can hoist
        # its per-candidate table bindings out of the per-node loop.
        if todo:
            if fresh_tables and name == "flat":
                # Verified-current tables short-circuit the factory
                # dispatch straight to the flyweight explorer.
                explorer: _kernels.FollowerExplorer = tables.explorer_for(x)
            else:
                explorer = _kernels.make_explorer(name, state, x)
            counts = report.counts
            members = report.members
            for nid, survivors, pops in explorer.explore_nodes(todo):
                counts[nid] = len(survivors)
                members[nid] = survivors
                visited += pops
        explored = len(todo)
        # Registry reads are deltas over sums, so batching the adds per
        # call is observationally identical to per-node increments.
        if reused:
            _obs.add(_obs.REUSED_NODES, reused)
        if explored:
            _obs.add(_obs.EXPLORED_NODES, explored)
            _obs.add(_obs.VISITED_VERTICES, visited)
    _obs.add(_obs.EVALUATED_CANDIDATES)
    if counters is not None:
        counters.explored_nodes += explored
        counters.reused_nodes += reused
        counters.visited_vertices += visited
        counters.evaluated_candidates += 1
    # With nothing reused and no shell restriction the report is complete:
    # cross-validate it against a full re-decomposition when verifying.
    if _verify_enabled() and not reusable_counts and only_coreness is None:
        from repro.verify.invariants import verify_follower_report

        verify_follower_report(state, x, report.total, report.all_members())
    return report


@pure
def followers_naive(
    graph: Graph,
    x: Vertex,
    anchors: Collection[Vertex] = (),
    base: CoreDecomposition | None = None,
) -> set[Vertex]:
    """Brute-force follower oracle: diff two full core decompositions.

    Returns every non-anchor vertex (other than ``x``) whose coreness
    strictly increases when ``x`` is anchored on top of ``anchors``.
    """
    anchor_set = frozenset(anchors)
    if base is None:
        base = core_decomposition(graph, anchor_set)
    after = core_decomposition(graph, anchor_set | {x})
    return {
        u
        for u in graph.vertices()
        if u != x and u not in anchor_set and after.coreness[u] > base.coreness[u]
    }
