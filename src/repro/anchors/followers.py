"""Follower computation for a candidate anchor (Algorithms 4 and 5).

Anchoring ``x`` raises the coreness of its *followers* by exactly one
(Theorem 4.6). ``find_followers`` computes them without re-running core
decomposition: for each tree node adjacent to ``x`` (Theorem 4.7), it
explores only the candidate followers reachable via upstair paths
(Theorem 4.14), in a min-heap ordered by shell-layer pair, discarding
candidates whose degree bound falls below ``c(u) + 1`` (Theorem 4.15)
with a cascading shrink (Algorithm 5).

``followers_naive`` is the brute-force oracle (two full decompositions);
the test suite asserts both agree on randomized graphs.
"""

from __future__ import annotations

import heapq
from collections.abc import Collection, Mapping
from dataclasses import dataclass, field

from repro import obs as _obs
from repro.anchors.state import AnchoredState
from repro.core.decomposition import CoreDecomposition, _sort_key, core_decomposition
from repro.core.tree import NodeId
from repro.graphs.graph import Graph, Vertex
from repro.lint.markers import pure
from repro.verify import enabled as _verify_enabled

# Exploration status tags. UNEXPLORED is represented by absence.
_IN_HEAP = 1
_SURVIVED = 2
_DISCARDED = 3


@dataclass
class FollowerCounters:
    """Instrumentation matching the paper's Figure 13 measurements.

    Since the :mod:`repro.obs` registry became the single home for work
    counters this class is a thin façade kept for API compatibility:
    the search code reports into the registry, and per-scope values are
    read back out through :meth:`from_window` (a registry delta). The
    explicit ``counters=`` accumulator threaded through
    :func:`find_followers` still works for callers that want a local
    tally without scoping a window.
    """

    explored_nodes: int = 0  # tree nodes searched from scratch
    reused_nodes: int = 0  # tree nodes answered from the cache
    visited_vertices: int = 0  # heap pops across all explorations
    pruned_candidates: int = 0  # candidates skipped by the upper bound
    evaluated_candidates: int = 0  # candidates whose followers were computed

    def merge(self, other: "FollowerCounters") -> None:
        self.explored_nodes += other.explored_nodes
        self.reused_nodes += other.reused_nodes
        self.visited_vertices += other.visited_vertices
        self.pruned_candidates += other.pruned_candidates
        self.evaluated_candidates += other.evaluated_candidates

    @classmethod
    def from_window(cls, window: _obs.Window) -> "FollowerCounters":
        """The counters accumulated in the registry since ``window`` opened."""
        return cls(
            explored_nodes=window.counter(_obs.EXPLORED_NODES),
            reused_nodes=window.counter(_obs.REUSED_NODES),
            visited_vertices=window.counter(_obs.VISITED_VERTICES),
            pruned_candidates=window.counter(_obs.PRUNED_CANDIDATES),
            evaluated_candidates=window.counter(_obs.EVALUATED_CANDIDATES),
        )


@dataclass
class FollowerReport:
    """Per-tree-node follower counts for one candidate anchor.

    ``counts[id]`` is ``|F[x][id]|``; ``members[id]`` holds the actual
    follower set when the node was explored this call (reused nodes only
    have their cached count — the paper's cache stores counts, not sets).
    """

    anchor: Vertex
    counts: dict[NodeId, int] = field(default_factory=dict)
    members: dict[NodeId, set[Vertex]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """``|F(x)| = g({x})`` — the coreness gain of anchoring ``x``."""
        return sum(self.counts.values())

    @classmethod
    def from_counts(cls, anchor: Vertex, counts: Mapping[NodeId, int]) -> "FollowerReport":
        """Rehydrate a report from per-node counts alone (no member sets).

        The shape a candidate-scan worker ships back to the parent: the
        reuse cache stores counts only (like the paper's), so a shipped
        report is as storable as a locally computed one.
        """
        return cls(anchor=anchor, counts=dict(counts))

    def all_members(self) -> set[Vertex]:
        """Union of explored follower sets (valid when nothing was reused)."""
        result: set[Vertex] = set()
        for group in self.members.values():  # lint: order-ok set union is commutative
            result |= group
        return result


@pure
def find_followers(
    state: AnchoredState,
    x: Vertex,
    reusable_counts: Mapping[NodeId, int] | None = None,
    counters: FollowerCounters | None = None,
    only_coreness: int | None = None,
) -> FollowerReport:
    """Compute ``F[x][id]`` for every node ``id`` in ``sn(x)`` (Algorithm 4).

    Args:
        state: current anchored state (``x`` must not already be anchored).
        x: the candidate anchor.
        reusable_counts: validated cache entries ``{node id: |F[x][id]|}``
            from the previous greedy iteration; those nodes are not
            re-explored (Section 4.3 / "Reusing Followers").
        counters: optional instrumentation accumulator.
        only_coreness: when set, restrict the search to tree nodes with
            exactly this coreness (per-node explorations are independent,
            so skipping nodes is sound). OLAK uses this to search only
            the (k-1)-shell.

    Returns:
        A :class:`FollowerReport` whose total is the coreness gain of
        anchoring ``x`` on top of the current anchors (restricted to the
        selected shell when ``only_coreness`` is given).
    """
    if x in state.anchors:
        raise ValueError(f"candidate {x!r} is already anchored")
    report = FollowerReport(anchor=x)
    own_node = state.node_id(x)
    with _obs.span("followers.search", anchor=x):
        for nid in sorted(state.sn(x), key=_sort_key):
            if only_coreness is not None and state.tree.nodes[nid].k != only_coreness:
                continue
            if reusable_counts is not None and nid in reusable_counts:
                report.counts[nid] = reusable_counts[nid]
                _obs.add(_obs.REUSED_NODES)
                if counters is not None:
                    counters.reused_nodes += 1
                continue
            survivors = _explore_node(state, x, nid, nid == own_node, counters)
            report.counts[nid] = len(survivors)
            report.members[nid] = survivors
            _obs.add(_obs.EXPLORED_NODES)
            if counters is not None:
                counters.explored_nodes += 1
    _obs.add(_obs.EVALUATED_CANDIDATES)
    if counters is not None:
        counters.evaluated_candidates += 1
    # With nothing reused and no shell restriction the report is complete:
    # cross-validate it against a full re-decomposition when verifying.
    if _verify_enabled() and not reusable_counts and only_coreness is None:
        from repro.verify.invariants import verify_follower_report

        verify_follower_report(state, x, report.total, report.all_members())
    return report


@pure
def _explore_node(
    state: AnchoredState,
    x: Vertex,
    nid: NodeId,
    is_own_node: bool,
    counters: FollowerCounters | None,
) -> set[Vertex]:
    """Survivors of the candidate exploration within one tree node."""
    graph = state.graph
    anchors = state.anchors
    pairs = state.decomposition.shell_layer
    coreness = state.decomposition.coreness
    same_shell = state.same_shell
    fixed_support = state.fixed_support
    px = pairs[x]
    adj_x = graph.neighbors(x)

    if is_own_node:
        seeds = [
            v
            for v in state.tca(x).get(nid, ())
            if v not in anchors and pairs[v][0] == px[0] and pairs[v][1] > px[1]
        ]
    else:
        seeds = [v for v in state.tca(x).get(nid, ()) if v not in anchors]

    status: dict[Vertex, int] = {}
    dplus: dict[Vertex, int] = {}
    heap: list[tuple[tuple[int, int], object, Vertex]] = []
    for v in seeds:
        status[v] = _IN_HEAP
        heapq.heappush(heap, (pairs[v], _sort_key(v), v))

    pops = 0
    while heap:
        _, _, u = heapq.heappop(heap)
        if status.get(u) != _IN_HEAP:
            continue
        pops += 1
        # d+(u) of Theorem 4.15: anchored + deeper-shell neighbors are
        # precomputed (they always count); x counts if adjacent and not
        # already part of the fixed support; same-shell neighbors count
        # per their exploration status — higher layers unless discarded,
        # lower/equal layers only while surviving or queued.
        cu = coreness[u]
        iu = pairs[u][1]
        bound = fixed_support[u]
        if u in adj_x and coreness[x] <= cu:
            bound += 1
        for v in same_shell[u]:
            if v == x:
                continue  # already counted via the adjacency check
            sv = status.get(v)
            if pairs[v][1] > iu:
                if sv != _DISCARDED:
                    bound += 1
            elif sv == _IN_HEAP or sv == _SURVIVED:
                bound += 1
        if bound >= cu + 1:
            status[u] = _SURVIVED
            dplus[u] = bound
            for w in same_shell[u]:
                if w == x or w in status:
                    continue
                if pairs[w][1] > iu:
                    status[w] = _IN_HEAP
                    heapq.heappush(heap, (pairs[w], _sort_key(w), w))
        else:
            status[u] = _DISCARDED
            _shrink(same_shell, coreness, status, dplus, u)

    _obs.add(_obs.VISITED_VERTICES, pops)
    if counters is not None:
        counters.visited_vertices += pops
    return {u for u, s in status.items() if s == _SURVIVED}


def _shrink(
    same_shell: dict[Vertex, list[Vertex]],
    coreness: dict[Vertex, int],
    status: dict[Vertex, int],
    dplus: dict[Vertex, int],
    discarded: Vertex,
) -> None:
    """Algorithm 5: cascade the discard of a candidate to its supporters.

    Only same-shell neighbors can be surviving candidates (exploration
    never leaves the tree node), so the cascade walks those lists only.
    """
    stack = [discarded]
    while stack:
        w = stack.pop()
        for v in same_shell[w]:
            if status.get(v) == _SURVIVED:
                dplus[v] -= 1
                if dplus[v] < coreness[v] + 1:
                    status[v] = _DISCARDED
                    stack.append(v)


@pure
def followers_naive(
    graph: Graph,
    x: Vertex,
    anchors: Collection[Vertex] = (),
    base: CoreDecomposition | None = None,
) -> set[Vertex]:
    """Brute-force follower oracle: diff two full core decompositions.

    Returns every non-anchor vertex (other than ``x``) whose coreness
    strictly increases when ``x`` is anchored on top of ``anchors``.
    """
    anchor_set = frozenset(anchors)
    if base is None:
        base = core_decomposition(graph, anchor_set)
    after = core_decomposition(graph, anchor_set | {x})
    return {
        u
        for u in graph.vertices()
        if u != x and u not in anchor_set and after.coreness[u] > base.coreness[u]
    }
