"""Flat-array follower exploration over the interned CSR ids.

The default backend whenever a CSR view exists. Algorithm 4/5 run here
entirely on dense integer ids:

* per-id ``(core, shell, layer, fixed-support)`` tables and same-shell
  neighbor-id rows, mirrored from the :class:`~repro.anchors.state.AnchoredState`
  dicts once per state (plain lists rather than ``array('i')`` for the
  same re-boxing reason as :meth:`repro.graphs.csr.CSRGraph.as_lists`);
* a precomputed int-packed ``(shell << 2w) | (layer << w) | id`` heap
  key per id, replacing the dict backend's ``(pair, sort_key, vertex)``
  tuples — ascending id order *is* the canonical
  :func:`~repro.graphs.graph.vertex_sort_key` order under sorted
  interning, so the packed comparison reproduces the oracle's heap
  order exactly;
* one generation-packed scratch word per id: ``packed[i] = (gen << 2) |
  status``. ``gen`` strictly increases per exploration, so any entry
  below the current generation base is stale garbage — UNEXPLORED —
  with no per-candidate reset and no separate stamp array (status
  comparisons against ``base | TAG`` reject stale entries for free);
* a preallocated cascading-shrink worklist.

The tables are cached on the state (``state.kernel_tables``) and kept
current by :func:`repro.anchors.incremental.apply_anchor`, which calls
:meth:`FlatTables.apply_update` for exactly the vertices whose derived
values it refreshed — the same increment that keeps the per-worker
lineage caches cheap keeps these tables warm across greedy rounds.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING

from repro.anchors.state import AnchoredState
from repro.graphs.csr import CSRGraph, csr_view, decomposition_arrays
from repro.graphs.graph import Vertex

if TYPE_CHECKING:
    from repro.core.tree import NodeId

# Exploration status tags, identical to the dict backend's. UNEXPLORED
# is represented by a stale (below the current base) generation word.
_IN_HEAP = 1
_SURVIVED = 2
_DISCARDED = 3


class FlatTables:
    """Dense per-id mirrors of the exploration state, cached per state.

    Attributes:
        core / shell / layer: per-id coreness and shell-layer pair.
        fixed: per-id fixed support (anchored + deeper-shell neighbors).
        same: per-id same-shell neighbor id rows (anchors excluded, in
            canonical ascending order — mirrors ``state.same_shell``).
        higher / loweq: ``same`` split by layer relative to the row
            owner (strictly higher vs lower-or-equal), preserving row
            order. The Theorem 4.15 bound treats the two classes
            differently on every heap pop; splitting once per update
            deletes the per-neighbor layer comparison from the hottest
            loop in the package.
        is_anchor: per-id anchor flag.
        keys: per-id packed heap key ``(shell << 2w) | (layer << w) | id``.
        shift / shift2 / idmask: the packed heap-key geometry.
        gen / packed: generation-packed scratch; ``packed[i] < (gen << 2)``
            means untouched by the current exploration (UNEXPLORED).
        status / dplus: per-id scratch — the byte statuses are the numpy
            backend's (it keeps its own generation stamps), the bound
            values are shared.
        support: per-id neighbor rows pre-filtered to ``core >= core(owner)``
            — the neighbors that would pass the oracle's
            ``c(x) <= c(u)`` support test if the owner were the
            candidate. ``begin_candidate`` stamps this row verbatim.
        cgen / xmark: generation marks over the current candidate's
            ``support`` row; ``xmark[u] == cgen`` is the whole
            ``u in adj_x and c(x) <= c(u)`` test (no clearing between
            candidates).
        tca_ids: per-id mirror of ``state.tca`` with seed sets interned
            to ascending id tuples (the per-seed label lookups move out
            of the search).
        sn_ids: per-id mirror of ``state.sn`` as a tuple of node ids in
            interned-id order — the exploration order of
            ``find_followers``, presorted (ascending interned id *is*
            the canonical ``vertex_sort_key`` order).
        touched / work / fresh / heap: reusable id worklists (touched-
            this-exploration collection, cascading-shrink stack,
            per-pop push candidates, the exploration heap — always
            drained, so it needs no clearing between explorations).
        explorer: the reusable :class:`FlatExplorer` flyweight
            (:func:`flat_explorer` re-points it per candidate instead
            of allocating — the greedy scan builds one explorer per
            evaluated candidate, serially).
    """

    __slots__ = (
        "csr",
        "index",
        "labels",
        "rows",
        "anchors",
        "decomposition",
        "core",
        "shell",
        "layer",
        "fixed",
        "same",
        "higher",
        "loweq",
        "is_anchor",
        "keys",
        "shift",
        "shift2",
        "idmask",
        "gen",
        "packed",
        "status",
        "dplus",
        "support",
        "cgen",
        "xmark",
        "tca_ids",
        "sn_ids",
        "touched",
        "work",
        "fresh",
        "heap",
        "explorer",
    )

    def __init__(self, state: AnchoredState, csr: CSRGraph) -> None:
        n = csr.num_vertices
        self.csr = csr
        self.index = csr.index
        self.labels = csr.labels
        self.rows = csr.rows()
        self.anchors = state.anchors
        self.decomposition = state.decomposition
        self.core, self.shell, self.layer = decomposition_arrays(
            csr, state.decomposition.coreness, state.decomposition.shell_layer
        )
        index = csr.index
        is_anchor = bytearray(n)
        for a in state.anchors:  # lint: order-ok independent flag writes
            is_anchor[index[a]] = 1
        self.is_anchor = is_anchor
        fixed_support = state.fixed_support
        same_shell = state.same_shell
        self.fixed = [fixed_support.get(u, 0) for u in csr.labels]
        # Rows as tuples: the bound scan iterates them on every heap
        # pop, and tuple iteration shaves a little off each pass.
        self.same = [
            tuple(index[v] for v in same_shell.get(u, ()))
            for u in csr.labels
        ]
        # Key geometry: 2**shift > n covers both the id field (ids are
        # < n) and the layer field (a shell has at most n layers), so
        # (shell << 2w) | (layer << w) | id compares exactly like the
        # oracle's ((shell, layer), sort_key, vertex) heap tuples.
        self.shift = w1 = max(1, n.bit_length())
        self.shift2 = w2 = 2 * w1
        self.idmask = (1 << w1) - 1
        shell = self.shell
        layer = self.layer
        self.keys = [
            (shell[i] << w2) | (layer[i] << w1) | i for i in range(n)
        ]
        self.higher: list[tuple[int, ...]] = [()] * n
        self.loweq: list[tuple[int, ...]] = [()] * n
        for i in range(n):  # lint: order-ok per-id splits are independent
            self._split(i)
        self.gen = 0
        self.packed = [0] * n
        self.status = bytearray(n)
        self.dplus = [0] * n
        self.cgen = 0
        self.xmark = [0] * n
        core = self.core
        rows = self.rows
        self.support = [
            tuple(j for j in rows[i] if core[j] >= core[i]) for i in range(n)
        ]
        adjacency_tca = state.adjacency.tca
        self.tca_ids: list[dict[object, tuple[int, ...]]] = [
            {
                nid: tuple(sorted(index[v] for v in vs))
                for nid, vs in adjacency_tca[u].items()
            }
            for u in csr.labels
        ]
        adjacency_sn = state.adjacency.sn
        self.sn_ids: list[tuple[object, ...]] = [
            tuple(sorted(adjacency_sn[u], key=index.__getitem__))
            for u in csr.labels
        ]
        self.touched: list[int] = []
        self.work: list[int] = []
        self.fresh: list[int] = []
        self.heap: list[int] = []
        self.explorer: "FlatExplorer | None" = None

    def _split(self, i: int) -> None:
        """Rebuild ``higher[i]`` / ``loweq[i]`` from ``same[i]`` + layers."""
        layer = self.layer
        li = layer[i]
        hi: list[int] = []
        lo: list[int] = []
        for v in self.same[i]:
            (hi if layer[v] > li else lo).append(v)
        self.higher[i] = tuple(hi)
        self.loweq[i] = tuple(lo)

    def apply_update(self, state: AnchoredState, touched: set[Vertex]) -> None:
        """Refresh the tables for the vertices ``apply_anchor`` changed.

        ``touched`` is the anchored component plus its neighborhood —
        exactly the set whose coreness/shell-layer/support/same-shell
        values the incremental anchoring refreshed (including the new
        anchor itself and the boundary anchors whose effective coreness
        moved).
        """
        index = self.index
        coreness = state.decomposition.coreness
        shell_layer = state.decomposition.shell_layer
        anchors = state.anchors
        fixed_support = state.fixed_support
        same_shell = state.same_shell
        adjacency_tca = state.adjacency.tca
        adjacency_sn = state.adjacency.sn
        tca_ids = self.tca_ids
        sn_ids = self.sn_ids
        core = self.core
        shell = self.shell
        layer = self.layer
        keys = self.keys
        is_anchor = self.is_anchor
        fixed = self.fixed
        same = self.same
        rows = self.rows
        support = self.support
        w1 = self.shift
        w2 = self.shift2
        redo: set[int] = set()
        moved: list[int] = []
        ids: list[int] = []
        for u in touched:  # lint: order-ok per-id updates are independent
            i = index[u]
            ids.append(i)
            core[i] = coreness[u]
            pair = shell_layer[u]
            key = (pair[0] << w2) | (pair[1] << w1) | i
            if key != keys[i]:
                keys[i] = key
                shell[i] = pair[0]
                layer[i] = pair[1]
                moved.append(i)
            is_anchor[i] = 1 if u in anchors else 0
            fixed[i] = fixed_support.get(u, 0)
            same[i] = tuple(index[v] for v in same_shell.get(u, ()))
            tca_ids[i] = {
                nid: tuple(sorted(index[v] for v in vs))
                for nid, vs in adjacency_tca[u].items()
            }
            sn_ids[i] = tuple(
                sorted(adjacency_sn[u], key=index.__getitem__)
            )
            redo.add(i)
        # The support rows filter each neighbor by core relative to the
        # row owner, so they depend on core values possibly updated
        # later in the loop above — rebuild them in a second pass. A
        # core change of either endpoint lands both endpoints in
        # ``touched`` (the changed vertex is in the component, its
        # neighbors in the component's neighborhood), so refreshing the
        # touched rows covers every stale entry.
        for i in ids:  # lint: order-ok per-id rebuilds are independent
            support[i] = tuple(j for j in rows[i] if core[j] >= core[i])
        # The higher/loweq splits classify each row entry by *its* layer,
        # so a vertex whose (shell, layer) pair moved also stales the
        # splits of its same-shell neighbors — which may sit outside
        # ``touched`` when only layers shifted within a shell. (Shell
        # changes rewrite the neighbors' same-shell rows, which puts
        # those neighbors in ``touched`` already.)
        for i in moved:
            redo.update(same[i])
        for i in redo:  # lint: order-ok per-id splits are independent
            self._split(i)
        self.anchors = anchors
        self.decomposition = state.decomposition

    def explorer_for(self, x: Vertex) -> "FlatExplorer":
        """The flyweight explorer, re-pointed at candidate ``x``.

        Only valid on tables already known to be current — callers that
        have not checked staleness go through :func:`flat_explorer`.
        """
        e = self.explorer
        if e is None:
            e = FlatExplorer.__new__(FlatExplorer)
            e.tables = self
            self.explorer = e
        _point(e, self, x)
        return e

    def begin_candidate(self, xid: int) -> int:
        """Mark ``xid``'s support row under a fresh candidate generation.

        Returns the generation; ``xmark[u] == cgen`` is the membership
        test. Previous candidates' marks are simply stale generations,
        so nothing needs clearing. The row is pre-filtered to
        ``core >= core(xid)`` — the oracle's support test is
        ``u in adj(x) and c(x) <= c(u)``, and core values cannot move
        between here and the candidate's explorations — so the test
        collapses to the single generation check.
        """
        self.cgen = cg = self.cgen + 1
        xmark = self.xmark
        for i in self.support[xid]:
            xmark[i] = cg
        return cg


def tables_for(state: AnchoredState) -> FlatTables:  # lint: obs-ok cache accessor; the search span wraps it
    """The state's cached flat tables, built on first use.

    Staleness is guarded by identity: ``apply_anchor`` both replaces
    ``state.decomposition`` and re-syncs the cached tables, so a tables
    object pointing at the current decomposition and anchor set is
    current by construction; anything else is rebuilt from scratch.
    """
    tables = state.kernel_tables
    if (
        tables is not None
        and tables.decomposition is state.decomposition
        and tables.anchors is state.anchors
    ):
        return tables
    csr = csr_view(state.graph)
    if csr is None:  # pragma: no cover - make_explorer routes these to dict
        raise RuntimeError("flat follower kernel needs a CSR view")
    tables = FlatTables(state, csr)
    state.kernel_tables = tables
    return tables


class FlatExplorer:
    """Per-candidate exploration context for the flat backend.

    Constructed through :func:`flat_explorer`, which reuses the one
    flyweight instance cached on the tables — the candidate scan is
    serial and builds one explorer per evaluated candidate, so the
    per-candidate state (id, generation, seed map, own-node key window)
    is simply re-pointed instead of re-allocated.
    """

    __slots__ = ("tables", "xid", "cg", "lo", "hi", "seeds")

    def __init__(self, state: AnchoredState, x: Vertex) -> None:
        self.tables = tables = tables_for(state)
        _point(self, tables, x)

    def explore_nodes(
        self, todo: "list[tuple[NodeId, bool]]"
    ) -> "list[tuple[NodeId, set[Vertex], int]]":
        """Explore every requested tree node for this candidate.

        One batched call per candidate: the table hoists, the seed-map
        lookup, and the worklist bindings amortize over all of the
        candidate's explorations instead of being repaid per node.
        Each exploration is step-for-step the dict backend's loop; see
        :class:`repro.anchors.kernels.dict_backend.DictExplorer` for the
        Theorem 4.15 commentary, with three mechanical fusions:

        * status tests compare the packed word against ``base | TAG``
          directly — a stale word (older generation) is below ``base``,
          so it can never equal a current-generation tag;
        * the bound scan runs over the pre-split ``higher`` / ``loweq``
          rows (no per-neighbor layer comparison) and collects push
          candidates (untouched higher-layer neighbors, in row order)
          as it counts them, so a surviving pop never re-scans its row.
          Nothing mutates ``packed`` between the scan and the pushes,
          so the collected list is exactly what the oracle's second
          scan would select, in the same order — the heap is identical;
        * the candidate's own id is pre-discarded for the exploration
          instead of being tested per neighbor: the oracle skips ``x``
          in every scan, and a DISCARDED word contributes nothing in
          any scan here. Sound because ``x`` can never *enter* an
          exploration — seeds are neighbors of ``x`` and the graph
          rejects self-loops — so the mark is never overwritten.
        """
        t = self.tables
        core = t.core
        fixed = t.fixed
        same = t.same
        higher = t.higher
        loweq = t.loweq
        keys = t.keys
        labels = t.labels
        is_anchor = t.is_anchor
        packed = t.packed
        dplus = t.dplus
        xmark = t.xmark
        work = t.work
        mask = t.idmask
        xid = self.xid
        cg = self.cg
        lo = self.lo
        hi = self.hi
        seed_map = self.seeds
        push = heappush
        pop = heappop
        touched = t.touched
        fresh = t.fresh
        heap = t.heap
        del heap[:]  # always drained below; clear only stale garbage
        seeds_of = seed_map.get
        touch = touched.append
        out: "list[tuple[NodeId, set[Vertex], int]]" = []
        emit = out.append
        gen = t.gen
        for nid, is_own_node in todo:
            # Consume the generation up front so an aborted exploration
            # can never alias a later one's scratch words.
            t.gen = gen = gen + 1
            base = gen << 2
            bh = base | _IN_HEAP
            del touched[:]

            seeds = seeds_of(nid)
            if seeds:
                if is_own_node:
                    for vi in seeds:
                        if is_anchor[vi]:
                            continue
                        k = keys[vi]
                        if lo <= k < hi:
                            packed[vi] = bh
                            touch(vi)
                            push(heap, k)
                else:
                    for vi in seeds:
                        if is_anchor[vi]:
                            continue
                        packed[vi] = bh
                        touch(vi)
                        push(heap, keys[vi])
            if not heap:
                # Nothing passed the seed filters: nothing was explored,
                # so nothing can have survived (touched is empty too).
                emit((nid, set(), 0))
                continue
            bs = base | _SURVIVED
            bd = base | _DISCARDED
            # Pre-discard the candidate itself — sound because the seed
            # loops above can never have queued it (no self-loops), so
            # no mark is overwritten.
            packed[xid] = bd

            pops = 0
            ns = 0  # live survivor count — gates the cascading shrink
            while heap:
                u = pop(heap) & mask
                # Heap entries are always this generation; only the
                # status can have moved on (survived / shrink-discarded).
                if packed[u] != bh:
                    continue
                pops += 1
                cu = core[u]
                bound = fixed[u]
                if xmark[u] == cg:
                    bound += 1
                del fresh[:]
                for v in higher[u]:
                    pv = packed[v]
                    if pv < base:
                        bound += 1
                        fresh.append(v)
                    elif pv != bd:
                        bound += 1
                for v in loweq[u]:
                    # IN_HEAP or SURVIVED, i.e. strictly between the
                    # generation base and its DISCARDED word.
                    if base < packed[v] < bd:
                        bound += 1
                if bound > cu:
                    packed[u] = bs
                    dplus[u] = bound
                    ns += 1
                    for v in fresh:
                        packed[v] = bh
                        touch(v)
                        push(heap, keys[v])
                elif ns:
                    # The cascade can only decrement SURVIVED neighbors;
                    # with none alive it is a guaranteed no-op, so the
                    # (hot) row scans are skipped outright.
                    packed[u] = bd
                    work.append(u)
                    while work:
                        wv = work.pop()
                        for v in same[wv]:
                            if packed[v] == bs:
                                d = dplus[v] - 1
                                dplus[v] = d
                                if d <= core[v]:
                                    packed[v] = bd
                                    ns -= 1
                                    work.append(v)
                        if not ns:
                            # Every survivor is gone — the remaining
                            # worklist scans cannot change anything.
                            del work[:]
                            break
                else:
                    packed[u] = bd

            if ns:
                emit(
                    (nid, {labels[i] for i in touched if packed[i] == bs}, pops)
                )
            else:
                emit((nid, set(), pops))
        return out


def _point(e: FlatExplorer, tables: FlatTables, x: Vertex) -> None:
    """Re-point explorer ``e`` at candidate ``x`` (fresh generation)."""
    xid = tables.index[x]
    e.xid = xid
    e.cg = tables.begin_candidate(xid)
    e.seeds = tables.tca_ids[xid]
    # Own-node seed window — same shell as x, strictly higher layer
    # — as one key range: lo = (shell_x, layer_x + 1, 0) and
    # hi = (shell_x + 1, 0, 0). Constant per candidate.
    kx = tables.keys[xid]
    e.lo = ((kx >> tables.shift) + 1) << tables.shift
    e.hi = ((kx >> tables.shift2) + 1) << tables.shift2


def flat_explorer(state: AnchoredState, x: Vertex) -> FlatExplorer:
    """The flat backend's explorer factory (reuses the tables flyweight)."""
    return tables_for(state).explorer_for(x)
