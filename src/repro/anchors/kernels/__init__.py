"""Interchangeable follower-search kernels (the Algorithm 4/5 inner loop).

The follower search is the hot path of every greedy anchor scan — the
committed livejournal baseline spends ~45% of its serial GAC run inside
``followers.search`` — so the per-node exploration is factored into
swappable *backends* behind one tiny interface:

``dict``
    The original dict-of-sets implementation, kept verbatim as the
    oracle (:mod:`repro.anchors.kernels.dict_backend`). Works on any
    graph, including ones with no CSR view.
``flat``
    Flat-array rewrite against the interned CSR ids
    (:mod:`repro.anchors.kernels.flat_backend`): dense per-id tables,
    an int-packed ``(shell, layer, id)`` heap key, generation-stamped
    scratch arrays. The default whenever a CSR view exists.
``numpy``
    Optional vectorized escape hatch
    (:mod:`repro.anchors.kernels.numpy_backend`): the per-pop degree
    bound and push-candidate filtering run as numpy array operations
    over the flat tables. Falls back to ``flat`` when numpy is not
    installed.

Every backend is *byte-identical* to the dict oracle — follower sets,
Figure-13 counters, heap pop counts, anchor sequences — enforced by the
differential harness in ``tests/test_properties.py`` and the backend
matrix in ``tests/test_kernels.py``; the backends change wall-clock
only, exactly like ``REPRO_CSR`` for the substrate kernels.

Selection precedence (``docs/kernels.md``): an explicit ``kernel=``
kwarg (or ``--kernel`` CLI flag, which feeds it) beats the
``REPRO_KERNEL`` environment variable, which beats the default.
Availability fallbacks (``numpy`` missing, no CSR view) resolve the
*requested* name to the *concrete* backend and are gauged so a run that
silently degraded is diagnosable.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Protocol

from repro import obs as _obs
from repro.graphs.csr import csr_view

if TYPE_CHECKING:
    from repro.anchors.state import AnchoredState
    from repro.core.tree import NodeId
    from repro.graphs.graph import Graph, Vertex


class FollowerExplorer(Protocol):
    """What a backend's per-candidate exploration context must provide."""

    def explore_nodes(
        self, todo: "list[tuple[NodeId, bool]]"
    ) -> "list[tuple[NodeId, set[Vertex], int]]":
        """Explore every ``(node id, is_own_node)`` pair in order.

        One call per candidate: the caller hands over the full list of
        tree nodes that survived the reuse/shell filters, and the
        backend returns ``(node id, surviving followers, heap pops)``
        per entry in the same order. Batching lets backends hoist their
        per-candidate table bindings out of the per-node loop.
        """
        ...

#: The recognized backend names, in documentation order.
KERNELS = ("dict", "flat", "numpy")
#: Environment knob read when no explicit ``kernel=`` is given.
ENV_KERNEL = "REPRO_KERNEL"
#: Requested when neither kwarg nor environment chooses: the flat CSR
#: kernel, degrading to ``dict`` per graph when no CSR view exists.
DEFAULT_KERNEL = "flat"


def requested_kernel(kernel: "str | None" = None) -> str:
    """The backend name the caller asked for, before availability checks.

    Precedence: explicit ``kernel`` argument (the CLI's ``--kernel``
    arrives here as a kwarg) > ``REPRO_KERNEL`` > :data:`DEFAULT_KERNEL`.

    Raises:
        ValueError: for a name outside :data:`KERNELS` — a typo'd
            environment variable must fail loudly, not silently run the
            default backend.
    """
    if kernel is None:
        kernel = os.environ.get(ENV_KERNEL, "").strip() or DEFAULT_KERNEL
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown follower kernel {kernel!r}; expected one of {KERNELS}"
        )
    return kernel


def numpy_available() -> bool:
    """Whether the numpy backend can actually run (the library imports)."""
    from repro.anchors.kernels import numpy_backend

    return numpy_backend.available()


def resolve_kernel(
    kernel: "str | None" = None, graph: "Graph | None" = None
) -> str:
    """The concrete backend a search will run, after fallbacks.

    ``numpy`` degrades to ``flat`` when the library is missing; ``flat``
    (and therefore ``numpy``) degrades to ``dict`` when ``graph`` is
    given but has no CSR view (``REPRO_CSR=0`` or unorderable labels).
    Each degradation records a ``kernels.fallback.*`` gauge. Callers
    that resolve once per run (GAC, OLAK) pass the graph so the whole
    run — parent and workers — agrees on one concrete name.
    """
    name = requested_kernel(kernel)
    if name == "numpy" and not numpy_available():
        _obs.gauge("kernels.fallback.numpy_unavailable", 1.0)
        name = "flat"
    if name != "dict" and graph is not None and csr_view(graph) is None:
        _obs.gauge("kernels.fallback.no_csr", 1.0)
        name = "dict"
    return name


#: Explorer factories by backend name, filled on first use so the
#: per-candidate dispatch is one dict lookup (the hot path builds one
#: explorer per evaluated candidate).
_FACTORIES: dict[str, "Callable[[AnchoredState, Vertex], FollowerExplorer]"] = {}


def _factory(name: str) -> "Callable[[AnchoredState, Vertex], FollowerExplorer]":
    factory = _FACTORIES.get(name)
    if factory is None:
        if name == "flat":
            from repro.anchors.kernels import flat_backend

            factory = flat_backend.flat_explorer
        elif name == "numpy":
            from repro.anchors.kernels import numpy_backend

            factory = numpy_backend.NumpyExplorer
        else:
            from repro.anchors.kernels import dict_backend

            factory = dict_backend.DictExplorer
        _FACTORIES[name] = factory  # lint: race-ok idempotent memo — every writer stores the same factory object
    return factory


def make_explorer(
    name: str, state: "AnchoredState", x: "Vertex"
) -> FollowerExplorer:
    """A per-candidate explorer: ``explore_nodes(todo) -> [(nid, set, pops)]``.

    ``name`` must be concrete (pass it through :func:`resolve_kernel`
    first); as a final guard, flat-family backends still degrade to
    ``dict`` here when the state's graph has no CSR view, so a caller
    that resolved without a graph can never crash on a dict-only one.
    (Cached tables on the state prove a view exists — the common case
    skips the lookup.)
    """
    if (
        name != "dict"
        and state.kernel_tables is None
        and csr_view(state.graph) is None
    ):
        name = "dict"
    return _factory(name)(state, x)
