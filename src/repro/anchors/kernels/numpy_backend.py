"""Optional numpy-vectorized follower exploration (escape hatch).

Vectorizes the two row scans the flat backend performs per heap pop —
the Theorem 4.15 degree-bound recomputation over a vertex's same-shell
row, and the push-candidate filtering on survival — as numpy boolean
masks over per-id int32 arrays, in the ``SparseUtilsCython`` style of
flat-kernel libraries. Everything sequential (the heap order, the
cascading shrink, the seed filters) stays scalar: those steps carry the
ordering the byte-identity contract depends on, and vectorizing them
buys nothing.

numpy is an *optional* dependency and this module is the only place in
the package allowed to import it (enforced by the L5 whole-program lint
pass): the import is attempted once at module load, :func:`available`
reports the outcome, and :func:`repro.anchors.kernels.resolve_kernel`
degrades ``numpy`` to ``flat`` when it failed — the full test suite
passes with numpy absent. ``numpy.random`` stays banned by rule R2
everywhere, including here (the kernels are deterministic; they have no
use for randomness).

Tables: :class:`NumpyTables` extends the flat tables with int32/int64
mirrors (``status`` is shared memory — a ``frombuffer`` view over the
flat bytearray — so scalar writes and vector gathers see one array).
The numpy side keeps its own generation-stamp array: stamps written by
one backend are simply stale generations to the other, so a state
explored through both backends stays correct without any syncing.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING

try:  # pragma: no cover - exercised via available() on both outcomes
    import numpy as _np
except ImportError:  # pragma: no cover - the numpy-less environments
    _np = None  # type: ignore[assignment]

from repro.anchors.kernels.flat_backend import (
    _DISCARDED,
    _IN_HEAP,
    _SURVIVED,
    FlatTables,
    tables_for,
)
from repro.anchors.state import AnchoredState
from repro.graphs.csr import CSRGraph, csr_view
from repro.graphs.graph import Vertex

if TYPE_CHECKING:
    from repro.core.tree import NodeId


def available() -> bool:  # lint: obs-ok availability probe, no work to measure
    """Whether numpy imported — the backend's availability gate."""
    return _np is not None


class NumpyTables(FlatTables):
    """Flat tables plus the numpy mirrors the vector steps gather from."""

    __slots__ = ("core_np", "layer_np", "status_np", "stamp_np", "same_np")

    def __init__(self, state: AnchoredState, csr: CSRGraph) -> None:
        super().__init__(state, csr)
        n = csr.num_vertices
        self.core_np = _np.asarray(self.core, dtype=_np.int32)
        self.layer_np = _np.asarray(self.layer, dtype=_np.int32)
        # One shared buffer: scalar writes through the bytearray are
        # visible to vector gathers through this view, and vice versa.
        self.status_np = _np.frombuffer(self.status, dtype=_np.uint8)
        self.stamp_np = _np.zeros(n, dtype=_np.int64)
        self.same_np = [
            _np.asarray(row, dtype=_np.int32) for row in self.same
        ]

    def apply_update(self, state: AnchoredState, touched: set[Vertex]) -> None:
        super().apply_update(state, touched)
        index = self.index
        core_np = self.core_np
        layer_np = self.layer_np
        same_np = self.same_np
        for u in touched:  # lint: order-ok per-id updates are independent
            i = index[u]
            core_np[i] = self.core[i]
            layer_np[i] = self.layer[i]
            same_np[i] = _np.asarray(self.same[i], dtype=_np.int32)


def numpy_tables_for(state: AnchoredState) -> NumpyTables:  # lint: obs-ok cache accessor; the search span wraps it
    """The state's cached tables, upgraded to :class:`NumpyTables`.

    A state previously explored by the flat backend holds plain
    :class:`FlatTables`; they are rebuilt with mirrors here. The
    replacement stays a ``FlatTables`` subclass, so the flat backend
    keeps working on it unchanged.
    """
    tables = tables_for(state)
    if isinstance(tables, NumpyTables):
        return tables
    csr = csr_view(state.graph)
    assert csr is not None  # tables_for above already required it
    upgraded = NumpyTables(state, csr)
    state.kernel_tables = upgraded
    return upgraded


class NumpyExplorer:
    """Per-candidate exploration context for the numpy backend."""

    __slots__ = ("state", "tables", "x", "xid", "cg", "lo", "hi", "seeds")

    def __init__(self, state: AnchoredState, x: Vertex) -> None:
        if _np is None:
            raise RuntimeError(
                "numpy backend requested but numpy is not installed"
            )
        tables = numpy_tables_for(state)
        self.state = state
        self.tables = tables
        self.x = x
        xid = tables.index[x]
        self.xid = xid
        self.cg = tables.begin_candidate(xid)
        self.seeds = tables.tca_ids[xid]
        # Own-node seed window as one key range (see the flat backend).
        kx = tables.keys[xid]
        self.lo = ((kx >> tables.shift) + 1) << tables.shift
        self.hi = ((kx >> tables.shift2) + 1) << tables.shift2

    def explore_nodes(
        self, todo: "list[tuple[NodeId, bool]]"
    ) -> "list[tuple[NodeId, set[Vertex], int]]":
        """Explore each ``(node id, is_own_node)`` pair in order."""
        return [
            (nid, *self._explore(nid, is_own_node)) for nid, is_own_node in todo
        ]

    def _explore(self, nid: "NodeId", is_own_node: bool) -> tuple[set[Vertex], int]:
        """Survivors and heap pops within one tree node (vectorized bound)."""
        t = self.tables
        core = t.core
        layer = t.layer
        fixed = t.fixed
        same_np = t.same_np
        same = t.same
        keys = t.keys
        is_anchor = t.is_anchor
        status = t.status
        status_np = t.status_np
        stamp_np = t.stamp_np
        layer_np = t.layer_np
        dplus = t.dplus
        xmark = t.xmark
        mask = t.idmask
        xid = self.xid
        cg = self.cg
        t.gen = gen = t.gen + 1
        touched = t.touched
        del touched[:]
        count_nonzero = _np.count_nonzero
        # Pre-discard the candidate's own id instead of masking it out
        # of every row (the flat backend's trick: x never enters an
        # exploration, and DISCARDED contributes nothing to any scan).
        stamp_np[xid] = gen
        status[xid] = _DISCARDED

        heap: list[int] = []
        seeds = self.seeds.get(nid)
        if seeds:
            if is_own_node:
                lo = self.lo
                hi = self.hi
                for vi in seeds:
                    if is_anchor[vi]:
                        continue
                    k = keys[vi]
                    if lo <= k < hi:
                        stamp_np[vi] = gen
                        status[vi] = _IN_HEAP
                        touched.append(vi)
                        heappush(heap, k)
            else:
                for vi in seeds:
                    if is_anchor[vi]:
                        continue
                    stamp_np[vi] = gen
                    status[vi] = _IN_HEAP
                    touched.append(vi)
                    heappush(heap, keys[vi])

        pops = 0
        ns = 0  # live survivor count — gates the cascading shrink
        while heap:
            u = heappop(heap) & mask
            if status[u] != _IN_HEAP:
                continue
            pops += 1
            cu = core[u]
            iu = layer[u]
            bound = fixed[u]
            # begin_candidate only marks neighbors with core >= c(x), so
            # the support test is the single stamp comparison.
            if xmark[u] == cg:
                bound += 1
            row = same_np[u]
            higher = None
            if row.size:
                # Vectorized Theorem 4.15 bound: stale-generation
                # statuses zero out to UNEXPLORED, x is excluded by its
                # DISCARDED mark (its support came from the adjacency
                # check above).
                valid = stamp_np[row] == gen
                st = status_np[row] * valid
                higher = layer_np[row] > iu
                bound += int(
                    count_nonzero(higher & (st != _DISCARDED))
                ) + int(
                    count_nonzero(
                        ~higher & ((st == _IN_HEAP) | (st == _SURVIVED))
                    )
                )
            if bound >= cu + 1:
                status[u] = _SURVIVED
                dplus[u] = bound
                ns += 1
                if higher is not None:
                    # Vectorized push filter: untouched higher-layer
                    # same-shell neighbors enter the heap.
                    for vn in row[higher & ~valid]:
                        v = int(vn)
                        stamp_np[v] = gen
                        status[v] = _IN_HEAP
                        touched.append(v)
                        heappush(heap, keys[v])
            elif ns:
                # The cascade only decrements SURVIVED neighbors; with
                # none alive it is a guaranteed no-op (see the flat
                # backend), so the row scans are skipped outright.
                status[u] = _DISCARDED
                work = t.work
                work.append(u)
                while work:
                    wv = work.pop()
                    for v in same[wv]:
                        if stamp_np[v] == gen and status[v] == _SURVIVED:
                            d = dplus[v] - 1
                            dplus[v] = d
                            if d < core[v] + 1:
                                status[v] = _DISCARDED
                                ns -= 1
                                work.append(v)
                    if not ns:
                        del work[:]
                        break
            else:
                status[u] = _DISCARDED

        if not ns:
            return set(), pops
        labels = t.labels
        return {labels[i] for i in touched if status[i] == _SURVIVED}, pops
