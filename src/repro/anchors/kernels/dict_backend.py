"""The dict-of-sets follower exploration — the oracle backend.

This is the original :func:`repro.anchors.followers.find_followers`
inner loop, moved verbatim behind the kernel interface: per-vertex
``dict`` status/bound tables keyed by vertex label, heap entries ordered
by ``(shell-layer pair, canonical sort key, vertex)``. It needs nothing
but the :class:`~repro.anchors.state.AnchoredState` dicts, so it is the
backend of last resort (graphs with no CSR view) and the oracle every
flat-array backend must match byte for byte.
"""

from __future__ import annotations

import heapq

from repro.anchors.state import AnchoredState
from repro.core.decomposition import _sort_key
from repro.core.tree import NodeId
from repro.graphs.graph import Vertex

# Exploration status tags. UNEXPLORED is represented by absence.
_IN_HEAP = 1
_SURVIVED = 2
_DISCARDED = 3


class DictExplorer:
    """Per-candidate exploration context for the dict backend.

    Holds the state lookups Algorithm 4 reads on every pop — bound once
    per candidate so the per-node ``explore`` calls share them.
    """

    __slots__ = (
        "state",
        "x",
        "anchors",
        "pairs",
        "coreness",
        "same_shell",
        "fixed_support",
        "px",
        "adj_x",
    )

    def __init__(self, state: AnchoredState, x: Vertex) -> None:
        self.state = state
        self.x = x
        self.anchors = state.anchors
        self.pairs = state.decomposition.shell_layer
        self.coreness = state.decomposition.coreness
        self.same_shell = state.same_shell
        self.fixed_support = state.fixed_support
        self.px = self.pairs[x]
        self.adj_x = state.graph.neighbors(x)

    def explore_nodes(
        self, todo: "list[tuple[NodeId, bool]]"
    ) -> "list[tuple[NodeId, set[Vertex], int]]":
        """Explore each ``(node id, is_own_node)`` pair in order (verbatim loop)."""
        return [
            (nid, *self._explore(nid, is_own_node)) for nid, is_own_node in todo
        ]

    def _explore(self, nid: NodeId, is_own_node: bool) -> tuple[set[Vertex], int]:
        """Survivors and heap pops of the exploration within one tree node."""
        x = self.x
        anchors = self.anchors
        pairs = self.pairs
        coreness = self.coreness
        same_shell = self.same_shell
        fixed_support = self.fixed_support
        px = self.px
        adj_x = self.adj_x

        if is_own_node:
            seeds = [
                v
                for v in self.state.tca(x).get(nid, ())
                if v not in anchors and pairs[v][0] == px[0] and pairs[v][1] > px[1]
            ]
        else:
            seeds = [v for v in self.state.tca(x).get(nid, ()) if v not in anchors]

        status: dict[Vertex, int] = {}
        dplus: dict[Vertex, int] = {}
        heap: list[tuple[tuple[int, int], object, Vertex]] = []
        for v in seeds:
            status[v] = _IN_HEAP
            heapq.heappush(heap, (pairs[v], _sort_key(v), v))

        pops = 0
        while heap:
            _, _, u = heapq.heappop(heap)
            if status.get(u) != _IN_HEAP:
                continue
            pops += 1
            # d+(u) of Theorem 4.15: anchored + deeper-shell neighbors are
            # precomputed (they always count); x counts if adjacent and not
            # already part of the fixed support; same-shell neighbors count
            # per their exploration status — higher layers unless discarded,
            # lower/equal layers only while surviving or queued.
            cu = coreness[u]
            iu = pairs[u][1]
            bound = fixed_support[u]
            if u in adj_x and coreness[x] <= cu:
                bound += 1
            for v in same_shell[u]:
                if v == x:
                    continue  # already counted via the adjacency check
                sv = status.get(v)
                if pairs[v][1] > iu:
                    if sv != _DISCARDED:
                        bound += 1
                elif sv == _IN_HEAP or sv == _SURVIVED:
                    bound += 1
            if bound >= cu + 1:
                status[u] = _SURVIVED
                dplus[u] = bound
                for w in same_shell[u]:
                    if w == x or w in status:
                        continue
                    if pairs[w][1] > iu:
                        status[w] = _IN_HEAP
                        heapq.heappush(heap, (pairs[w], _sort_key(w), w))
            else:
                status[u] = _DISCARDED
                _shrink(same_shell, coreness, status, dplus, u)

        return {u for u, s in status.items() if s == _SURVIVED}, pops


def _shrink(
    same_shell: dict[Vertex, list[Vertex]],
    coreness: dict[Vertex, int],
    status: dict[Vertex, int],
    dplus: dict[Vertex, int],
    discarded: Vertex,
) -> None:
    """Algorithm 5: cascade the discard of a candidate to its supporters.

    Only same-shell neighbors can be surviving candidates (exploration
    never leaves the tree node), so the cascade walks those lists only.
    """
    stack = [discarded]
    while stack:
        w = stack.pop()
        for v in same_shell[w]:
            if status.get(v) == _SURVIVED:
                dplus[v] -= 1
                if dplus[v] < coreness[v] + 1:
                    status[v] = _DISCARDED
                    stack.append(v)
