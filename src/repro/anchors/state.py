"""Bundled decomposition state for anchored-coreness algorithms.

The greedy algorithms repeatedly need, for the current graph + anchor
set: the peel decomposition (coreness + shell-layer pairs), the core
component tree, and the tree-classified adjacency structures. This
module bundles them into one immutable-by-convention object that is
rebuilt after each anchoring.

The paper rebuilds only the subtree rooted at the anchor's node
(Algorithm 3 lines 7–10); we rebuild globally — identical results with a
constant-factor time difference (DESIGN.md §6). The result-*reuse*
bookkeeping, which is what the paper's experiments measure, is
implemented faithfully in :mod:`repro.anchors.reuse`.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.core.decomposition import CoreDecomposition, peel_decomposition
from repro.core.tree import CoreComponentTree, NodeId, TreeAdjacency
from repro.graphs.graph import Graph, Vertex

if TYPE_CHECKING:  # pragma: no cover - type-only import (cycle avoidance)
    from repro.anchors.kernels.flat_backend import FlatTables


class AnchoredState:
    """Graph + anchors + every derived structure the algorithms need.

    Attributes:
        graph: the underlying (never-mutated) graph.
        anchors: the current anchor set.
        decomposition: peel decomposition with shell-layer pairs,
            computed with ``anchors`` treated as infinite-degree.
        tree: the core component tree of the anchored decomposition.
        adjacency: the ``tca`` / ``sn`` / ``pn`` structures.
    """

    __slots__ = (
        "graph",
        "anchors",
        "decomposition",
        "tree",
        "adjacency",
        "fixed_support",
        "same_shell",
        "kernel_tables",
    )

    def __init__(
        self,
        graph: Graph,
        anchors: frozenset[Vertex],
        decomposition: CoreDecomposition,
        tree: CoreComponentTree,
        adjacency: TreeAdjacency,
    ) -> None:
        self.graph = graph
        self.anchors = anchors
        self.decomposition = decomposition
        self.tree = tree
        self.adjacency = adjacency
        # Per-vertex support that no candidate exploration can change:
        # anchored neighbors and deeper-shell neighbors always count
        # toward the (c(u)+1)-core degree bound. The same-shell neighbor
        # lists are the only part Algorithm 4 treats dynamically. Both
        # are produced by the adjacency pass when it tracked anchors.
        if adjacency.same_shell or not graph.num_vertices:
            self.fixed_support = adjacency.fixed_support
            self.same_shell = adjacency.same_shell
        else:
            rebuilt = TreeAdjacency(graph, decomposition, tree, anchors=anchors)
            self.fixed_support = rebuilt.fixed_support
            self.same_shell = rebuilt.same_shell
        # Flat per-id mirrors for the follower kernels, built lazily on
        # first flat/numpy exploration and kept current by
        # ``apply_anchor`` (see repro.anchors.kernels.flat_backend).
        self.kernel_tables: FlatTables | None = None

    @classmethod
    def build(cls, graph: Graph, anchors: Iterable[Vertex] = ()) -> "AnchoredState":
        """Compute all derived structures for ``graph`` with ``anchors``."""
        anchor_set = frozenset(anchors)
        decomposition = peel_decomposition(graph, anchor_set)
        tree = CoreComponentTree.build(graph, decomposition)
        adjacency = TreeAdjacency(graph, decomposition, tree, anchors=anchor_set)
        return cls(graph, anchor_set, decomposition, tree, adjacency)

    def with_anchor(self, x: Vertex) -> "AnchoredState":
        """A fresh state with ``x`` added to the anchor set."""
        return AnchoredState.build(self.graph, self.anchors | {x})

    # ------------------------------------------------------------------
    # Convenience accessors used heavily by the algorithms
    # ------------------------------------------------------------------
    def coreness(self, u: Vertex) -> int:
        """``c^A(u)`` under the current anchors."""
        return self.decomposition.coreness[u]

    def pair(self, u: Vertex) -> tuple[int, int]:
        """The shell-layer pair ``P(u)``."""
        return self.decomposition.shell_layer[u]

    def node_id(self, u: Vertex) -> NodeId:
        """``i_u = T[u].I``."""
        return self.tree.node_of[u].node_id

    def sn(self, u: Vertex) -> set[NodeId]:
        """``sn(u)``: adjacent node ids with coreness >= ``c(u)``."""
        return self.adjacency.sn[u]

    def pn(self, u: Vertex) -> set[NodeId]:
        """``pn(u)``: adjacent node ids with coreness < ``c(u)``."""
        return self.adjacency.pn[u]

    def tca(self, u: Vertex) -> dict[NodeId, set[Vertex]]:
        """``tca[u]``: u's neighbors partitioned by their tree node."""
        return self.adjacency.tca[u]

    def node_k(self) -> dict[NodeId, int]:
        """Coreness per tree node id (the reuse cache's validation key)."""
        return {nid: node.k for nid, node in self.tree.nodes.items()}

    def candidates(self) -> list[Vertex]:
        """All non-anchor vertices (the anchor candidate pool)."""
        return [u for u in self.graph.vertices() if u not in self.anchors]
