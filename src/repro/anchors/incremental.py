"""In-place anchoring: the paper's local subtree rebuild (Algorithm 3).

`AnchoredState.with_anchor` rebuilds every structure globally — simple,
but O(m) per greedy iteration regardless of how little changed. The
paper instead re-decomposes only ``CC(T[x])`` — the core component of
the anchored vertex — and splices the rebuilt subtree into the tree
(Algorithm 3 lines 7-10). This module implements that fast path.

Locality rests on two facts:

* a k-core component's decomposition (corenesses *and* shell layers) is
  independent of the rest of the graph, so re-peeling the component's
  induced subgraph — plus the already-anchored vertices adjacent to it,
  which supply permanent support — reproduces the global values;
* anchors live in no tree node (see ``CoreComponentTree.build``), so an
  anchoring never forces tree surgery outside the rebuilt subtree.

`apply_anchor` mutates the state. Its correctness oracle — structural
equality with a fresh ``AnchoredState.build`` — runs in the test suite
over random anchor sequences.
"""

from __future__ import annotations

from repro.anchors.state import AnchoredState
from repro.core.decomposition import CoreDecomposition, peel_decomposition
from repro.core.tree import CoreComponentTree, NodeId, TreeAdjacency, _sort_key
from repro.graphs.graph import Vertex


def apply_anchor(
    state: AnchoredState, x: Vertex, compute_removals: bool = True
) -> dict[Vertex, set[NodeId]]:
    """Anchor ``x`` in place; returns Algorithm 3's cache removals.

    Args:
        state: the state to mutate (``x`` must not already be anchored).
        x: the vertex to anchor.
        compute_removals: skip the invalidation bookkeeping when the
            caller runs without a follower cache (GAC-U-R).

    Returns:
        ``removals[u]`` — old node ids whose cached ``F[u][id]`` counts
        must be dropped (empty when ``compute_removals`` is false).
    """
    if x in state.anchors:
        raise ValueError(f"{x!r} is already anchored")
    graph = state.graph
    tree = state.tree
    old_node = tree.node_of[x]
    component = old_node.subtree_vertices()

    # ---- Algorithm 3 lines 1-6: invalidation from the old structures.
    removals: dict[Vertex, set[NodeId]] = {}
    affected: set[Vertex] = set()
    if compute_removals:
        for nid in state.sn(x):  # lint: order-ok set union is commutative
            affected |= tree.nodes[nid].vertices
        _invalidate(state.adjacency, tree, affected, removals)
    old_ids = {v: tree.node_of[v].node_id for v in component}

    # ---- Lines 7-10: re-decompose the component locally and splice.
    # Anchors adjacent to the component supply permanent support and act
    # as connectors; anchor-anchor chains extend that connectivity, so
    # the induced subgraph takes the closure of adjacent anchors.
    new_anchors = state.anchors | {x}
    boundary_anchors = {
        a
        for v in component
        for a in graph.neighbors(v)
        if a in state.anchors
    }
    closure = set(boundary_anchors)
    frontier = list(closure)
    while frontier:
        a = frontier.pop()
        for b in graph.neighbors(a):  # lint: order-ok closure BFS builds a set
            if b in state.anchors and b not in closure:
                closure.add(b)
                frontier.append(b)
    sub = graph.subgraph(component | closure)
    local = peel_decomposition(sub, closure | {x})
    coreness = state.decomposition.coreness
    shell_layer = state.decomposition.shell_layer
    for v in component:
        if v == x:
            continue
        coreness[v] = local.coreness[v]
        shell_layer[v] = local.shell_layer[v]
    # Anchor effective corenesses are defined over *global* non-anchor
    # neighborhoods; refresh every anchor whose neighborhood changed.
    state.anchors = new_anchors
    for a in sorted(boundary_anchors | {x}, key=_sort_key):
        eff = max(
            (
                coreness[v]
                for v in graph.neighbors(a)
                if v not in new_anchors
            ),
            default=0,
        )
        coreness[a] = eff
        shell_layer[a] = (eff, 0)
    state.decomposition = CoreDecomposition(
        coreness=coreness,
        shell_layer=shell_layer,
        order=[],  # the global deletion order is not maintained in place
        anchors=new_anchors,
    )

    subtree = CoreComponentTree.build(sub, local)
    old_parent = old_node.parent
    for node in _all_subtree_nodes(old_node):
        tree.nodes.pop(node.node_id, None)
    tree.node_of.pop(x, None)
    # Anchors connect at every level, so the component stays one piece
    # (x itself now connects whatever it used to): the rebuilt subtree
    # replaces the old one under the same parent.
    if old_parent is None:
        tree.roots = [r for r in tree.roots if r is not old_node]
        for root in subtree.roots:
            root.parent = None
            tree.roots.append(root)
        tree.roots.sort(key=lambda nd: _sort_key(nd.node_id))
    else:
        old_parent.children = [c for c in old_parent.children if c is not old_node]
        for root in subtree.roots:
            root.parent = old_parent
            old_parent.children.append(root)
        old_parent.children.sort(key=lambda c: _sort_key(c.node_id))
    for nid, node in subtree.nodes.items():
        tree.nodes[nid] = node
    for v, node in subtree.node_of.items():
        tree.node_of[v] = node

    # ---- Refresh adjacency/support for the component's neighborhood.
    touched = set(component)
    for v in component:
        touched |= graph.neighbors(v)
    _refresh_adjacency(state, touched)
    # Keep the flat kernel tables (if this state has been explored by a
    # flat-family follower backend) in sync with the same increment.
    if state.kernel_tables is not None:
        state.kernel_tables.apply_update(state, touched)

    # ---- Lines 12-16: invalidation from the new structures.
    if compute_removals:
        widened: set[Vertex] = set()
        for v in affected:  # lint: order-ok set union is commutative
            if v in new_anchors:
                continue
            widened |= tree.node_of[v].vertices
        # removals accumulate into per-vertex sets; scan order is free
        for v in widened - affected:  # lint: order-ok commutative set inserts
            vid = old_ids.get(v)
            if vid is None:
                continue
            removals.setdefault(v, set()).add(vid)
            tca_v = state.adjacency.tca[v]
            for nid2 in state.adjacency.pn[v]:
                for u in tca_v[nid2]:
                    removals.setdefault(u, set()).add(vid)
    return removals


def _invalidate(
    adjacency: TreeAdjacency,
    tree: CoreComponentTree,
    affected: set[Vertex],
    removals: dict[Vertex, set[NodeId]],
) -> None:
    """Lines 3-6: each affected vertex's node id dies for itself and for
    its lower-coreness neighbors."""
    for v in affected:  # lint: order-ok commutative set inserts
        vid = tree.node_of[v].node_id
        removals.setdefault(v, set()).add(vid)
        tca_v = adjacency.tca[v]
        for nid2 in adjacency.pn[v]:
            for u in tca_v[nid2]:
                removals.setdefault(u, set()).add(vid)


def _all_subtree_nodes(root) -> list:
    nodes = []
    stack = [root]
    while stack:
        node = stack.pop()
        nodes.append(node)
        stack.extend(node.children)
    return nodes


def _refresh_adjacency(state: AnchoredState, touched: set[Vertex]) -> None:
    """Recompute tca/sn/pn and the support tables for ``touched``.

    Mirrors the tracked :class:`TreeAdjacency` pass: anchored neighbors
    are bucketed nowhere and counted as fixed support.
    """
    graph = state.graph
    anchors = state.anchors
    coreness = state.decomposition.coreness
    node_of = state.tree.node_of
    adjacency = state.adjacency
    for u in touched:  # lint: order-ok per-vertex updates are independent
        cu = coreness[u]
        tca_u: dict[NodeId, set[Vertex]] = {}
        sn_u: set[NodeId] = set()
        pn_u: set[NodeId] = set()
        fixed = 0
        same: list[Vertex] = []
        # Canonical neighbor order keeps same_shell lists identical to a
        # fresh TreeAdjacency build (and stable across hash seeds).
        for v in sorted(graph.neighbors(u), key=_sort_key):
            if v in anchors:
                fixed += 1
                continue
            nid = node_of[v].node_id
            bucket = tca_u.get(nid)
            if bucket is None:
                tca_u[nid] = {v}
            else:
                bucket.add(v)
            cv = coreness[v]
            if cv >= cu:
                sn_u.add(nid)
            else:
                pn_u.add(nid)
            if cv > cu:
                fixed += 1
            elif cv == cu:
                same.append(v)
        adjacency.tca[u] = tca_u
        adjacency.sn[u] = sn_u
        adjacency.pn[u] = pn_u
        state.fixed_support[u] = fixed
        state.same_shell[u] = same
