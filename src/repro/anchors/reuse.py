"""Result reuse across greedy iterations (Section 4.3, Algorithm 3).

After anchoring ``x``, most of the graph's core structure is untouched:
only the tree nodes adjacent to ``x`` (and the nodes their escapees
join) can change. For every vertex ``u`` the paper computes ``rn(u)`` —
the adjacent tree nodes whose follower sets ``F[u][id]`` provably kept
their value (Lemma 4.8 / Theorem 4.9) and can be reused in the next
iteration.

We implement the identical invalidation logic but represent it as the
complement: :func:`result_reuse` returns the *removals* — per vertex,
the node ids whose cached counts must be dropped — and
:class:`FollowerCache` holds ``F[u][id]`` counts across iterations
(the paper stores counts, not member sets, for an O(m) space bound).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping

from repro import obs as _obs
from repro.anchors.followers import FollowerReport
from repro.anchors.state import AnchoredState
from repro.core.tree import NodeId
from repro.graphs.graph import Vertex
from repro.verify import enabled as _verify_enabled


class FollowerCache:
    """Cross-iteration store of ``|F[u][id]|`` counts.

    Entries carry the node's coreness alongside the count: a surviving
    entry is only served when the current tree still has a node with the
    same id *and the same coreness* (Lemma 4.8 guarantees this for every
    legitimately reusable node; the coreness check additionally rules
    out the pathological case where a relocated anchor produces a fresh
    node that happens to reuse an old node id).
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: dict[Vertex, dict[NodeId, tuple[int, int]]] = {}

    def store(self, report: FollowerReport, node_k: Mapping[NodeId, int]) -> None:
        """Record the per-node counts of a freshly evaluated candidate.

        ``node_k`` maps each node id in the report to its coreness.
        """
        self.entries[report.anchor] = {
            nid: (node_k[nid], count) for nid, count in report.counts.items()
        }

    def valid_counts(self, u: Vertex, state: AnchoredState) -> dict[NodeId, int]:
        """Cached counts for ``u`` valid under the current state.

        An entry is served when its node id is still in ``sn(u)`` and the
        node's coreness is unchanged (see class docstring).
        """
        stored = self.entries.get(u)
        if not stored:
            return {}
        with _obs.span("reuse.validate", candidate=u):
            sn_u = state.sn(u)
            nodes = state.tree.nodes
            valid: dict[NodeId, int] = {}
            for nid, (k, count) in stored.items():
                if nid in sn_u and nodes[nid].k == k:
                    valid[nid] = count
        if valid:
            _obs.add(_obs.REUSE_SERVED, len(valid))
        # Algorithm-3 soundness: a served count must equal what a fresh
        # per-node exploration would find (no stale tree nodes).
        if valid and _verify_enabled():
            from repro.verify.invariants import verify_cache_counts

            verify_cache_counts(state, u, valid)
        return valid

    def apply_removals(self, removals: Mapping[Vertex, set[NodeId]]) -> int:
        """Drop invalidated entries; returns how many were dropped."""
        dropped = 0
        for u, ids in removals.items():
            stored = self.entries.get(u)
            if not stored:
                continue
            for nid in ids:
                if stored.pop(nid, None) is not None:
                    dropped += 1
            if not stored:
                del self.entries[u]
        if dropped:
            _obs.add(_obs.REUSE_DROPPED, dropped)
        return dropped

    def forget(self, u: Vertex) -> None:
        """Remove every entry for ``u`` (used when ``u`` becomes an anchor)."""
        self.entries.pop(u, None)

    def clear(self) -> None:
        self.entries.clear()


def result_reuse(
    old_state: AnchoredState, new_state: AnchoredState, x: Vertex
) -> dict[Vertex, set[NodeId]]:
    """Algorithm 3: which ``F[u][id]`` entries die when ``x`` is anchored.

    Args:
        old_state: the state *before* anchoring ``x``.
        new_state: the state *after* (``new_state.anchors`` includes ``x``).
        x: the vertex just anchored.

    Returns:
        ``removals[u]`` — old-tree node ids to drop from ``u``'s cache.
        Everything not removed is reusable (``id in rn(u)``).
    """
    if x not in new_state.anchors or x in old_state.anchors:
        raise ValueError(f"{x!r} must be the newly anchored vertex")
    with _obs.span("reuse.invalidate", anchor=x):
        return _compute_removals(old_state, new_state, x)


def _compute_removals(
    old_state: AnchoredState, new_state: AnchoredState, x: Vertex
) -> dict[Vertex, set[NodeId]]:
    removals: dict[Vertex, set[NodeId]] = defaultdict(set)

    # Lines 1-6: every vertex in a node adjacent to x is suspect; its own
    # node id dies for itself and for its lower-coreness neighbors.
    old_nodes = old_state.tree.nodes
    affected: set[Vertex] = set()
    for nid in old_state.sn(x):  # lint: order-ok set union is commutative
        affected |= old_nodes[nid].vertices
    old_node_id = old_state.tree.node_id_of
    old_tca = old_state.adjacency.tca
    old_pn = old_state.adjacency.pn
    for v in affected:  # lint: order-ok commutative set inserts
        vid = old_node_id(v)
        removals[v].add(vid)
        tca_v = old_tca[v]
        for nid2 in old_pn[v]:
            for u in tca_v[nid2]:
                removals[u].add(vid)

    # Lines 12-16: vertices that now share a (new) node with an affected
    # vertex are suspect too — their old node id dies the same way.
    # ``x`` itself is affected but, as an anchor, no longer has a node.
    new_node_of = new_state.tree.node_of
    widened: set[Vertex] = set()
    for v in affected:  # lint: order-ok set union is commutative
        if v in new_state.anchors:
            continue
        widened |= new_node_of[v].vertices
    new_tca = new_state.adjacency.tca
    new_pn = new_state.adjacency.pn
    for v in widened - affected:  # lint: order-ok commutative set inserts
        vid = old_node_id(v)
        removals[v].add(vid)
        tca_v = new_tca[v]
        for nid2 in new_pn[v]:
            for u in tca_v[nid2]:
                removals[u].add(vid)

    return dict(removals)
