"""Anchored coreness algorithms: GAC, ablations, baselines, and the exact solver."""

from repro.anchors.bounds import UpperBounds, compute_upper_bounds, refined_total
from repro.anchors.collapsed import (
    CollapsedResult,
    greedy_collapsed_kcore,
    kcore_after_collapse,
)
from repro.anchors.costs import (
    BudgetedResult,
    budgeted_anchored_coreness,
    degree_proportional_costs,
    uniform_costs,
)
from repro.anchors.exact import ExactResult, exact_anchored_coreness
from repro.anchors.followers import (
    FollowerCounters,
    FollowerReport,
    find_followers,
    followers_naive,
)
from repro.anchors.gac import (
    GreedyResult,
    IterationTrace,
    baseline,
    gac,
    gac_u,
    gac_u_r,
    greedy_anchored_coreness,
)
from repro.anchors.heuristics import (
    HEURISTICS,
    degree_anchors,
    degree_minus_coreness_anchors,
    random_anchors,
    successive_degree_anchors,
)
from repro.anchors.incremental import apply_anchor
from repro.anchors.localsearch import LocalSearchResult, local_search_polish
from repro.anchors.lookahead import LookaheadResult, lookahead_anchored_coreness
from repro.anchors.reuse import FollowerCache, result_reuse
from repro.anchors.state import AnchoredState

__all__ = [
    "AnchoredState",
    "BudgetedResult",
    "CollapsedResult",
    "ExactResult",
    "FollowerCache",
    "FollowerCounters",
    "FollowerReport",
    "GreedyResult",
    "HEURISTICS",
    "IterationTrace",
    "LocalSearchResult",
    "LookaheadResult",
    "UpperBounds",
    "apply_anchor",
    "baseline",
    "budgeted_anchored_coreness",
    "compute_upper_bounds",
    "degree_anchors",
    "degree_proportional_costs",
    "degree_minus_coreness_anchors",
    "exact_anchored_coreness",
    "find_followers",
    "followers_naive",
    "gac",
    "greedy_collapsed_kcore",
    "gac_u",
    "gac_u_r",
    "greedy_anchored_coreness",
    "kcore_after_collapse",
    "local_search_polish",
    "lookahead_anchored_coreness",
    "random_anchors",
    "refined_total",
    "result_reuse",
    "successive_degree_anchors",
    "uniform_costs",
]
