"""The collapsed k-core problem — the adversarial dual of anchoring.

Zhang et al. (AAAI 2017), cited by the paper as part of the same
engagement-dynamics line: find ``b`` *collapsers* whose departure
shrinks the k-core the most. Where anchoring asks "whom do we pay to
stay", collapsing asks "whose loss hurts the most" — the paper's
Friendster motivation run in reverse. Implemented as the standard
greedy: each step removes the vertex whose deletion (plus the follow-on
cascade) evicts the most k-core members.

The cascade equilibrium reuses :mod:`repro.cascade` — a collapser is a
seeded departure, and the residual engaged set is the k-core of the
remaining graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cascade import departure_cascade
from repro.core.decomposition import _sort_key, core_decomposition
from repro.errors import BudgetError
from repro.graphs.graph import Graph, Vertex
from repro.obs import clock as _clock


@dataclass
class CollapsedResult:
    """Outcome of the greedy collapsed k-core run.

    Attributes:
        k: the engagement threshold.
        collapsers: chosen vertices in selection order.
        evictions: per collapser, how many members its removal evicted
            from the k-core (including itself if it was a member).
        initial_core_size: |k-core| before any removal.
        final_core_size: |k-core| after all removals.
    """

    k: int
    collapsers: list[Vertex] = field(default_factory=list)
    evictions: list[int] = field(default_factory=list)
    initial_core_size: int = 0
    final_core_size: int = 0
    elapsed_seconds: float = 0.0

    @property
    def total_evicted(self) -> int:
        return self.initial_core_size - self.final_core_size


def kcore_after_collapse(  # lint: obs-ok measured by collapse driver's span
    graph: Graph, k: int, collapsers: set[Vertex]
) -> set[Vertex]:
    """Members of the k-core once ``collapsers`` are deleted."""
    result = departure_cascade(graph, k, seeds=collapsers)
    return result.survivors


def greedy_collapsed_kcore(graph: Graph, k: int, budget: int) -> CollapsedResult:
    """Greedy collapsers: each step maximizes the k-core shrinkage.

    Candidates are current k-core members — removing anyone else cannot
    touch the k-core. Ties break toward the smallest vertex id.

    Raises:
        BudgetError: on an invalid budget.
    """
    if budget < 0 or budget > graph.num_vertices:
        raise BudgetError(f"budget {budget} invalid for n={graph.num_vertices}")
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    start = _clock()

    base = core_decomposition(graph)
    core = {u for u, c in base.coreness.items() if c >= k}
    result = CollapsedResult(k=k, initial_core_size=len(core))
    collapsers: set[Vertex] = set()
    current = set(core)

    for _ in range(budget):
        if not current:
            break
        best: Vertex | None = None
        best_core: set[Vertex] = set()
        best_loss = -1
        for u in sorted(current, key=_sort_key):
            remaining = kcore_after_collapse(graph, k, collapsers | {u})
            loss = len(current) - len(remaining)
            if loss > best_loss:
                best, best_core, best_loss = u, remaining, loss
        if best is None:
            break
        collapsers.add(best)
        current = best_core
        result.collapsers.append(best)
        result.evictions.append(best_loss)
    result.final_core_size = len(current)
    result.elapsed_seconds = _clock() - start
    return result
