"""Pair-lookahead greedy — an extension attacking non-submodularity.

Theorem 3.3 shows the coreness-gain function is not submodular: two
anchors can be worth far more together than separately (the library's
replicas exhibit this sharply — a first anchor of gain 17 can unlock a
second of gain 114). The paper's greedy is blind to such pairs until it
stumbles into them. This extension evaluates, besides the best single
anchor, every *pair* among the most promising candidates, and commits
two budget units when the pair's per-anchor rate beats the single.

This is a deliberate exploration beyond the paper (cost: one full core
decomposition per evaluated pair), showing the library supports
research iteration on the model, not just reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.anchors.followers import find_followers
from repro.anchors.incremental import apply_anchor
from repro.anchors.state import AnchoredState
from repro.core.decomposition import _sort_key, core_decomposition
from repro.errors import BudgetError
from repro.graphs.graph import Graph, Vertex
from repro.obs import clock as _clock


@dataclass
class LookaheadResult:
    """Outcome of the pair-lookahead greedy.

    Attributes:
        anchors: all chosen anchors in selection order.
        selections: the greedy's moves — 1-tuples (singles) and 2-tuples
            (committed pairs).
        gains: marginal coreness gain of each selection.
    """

    anchors: list[Vertex] = field(default_factory=list)
    selections: list[tuple[Vertex, ...]] = field(default_factory=list)
    gains: list[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def total_gain(self) -> int:
        return sum(self.gains)

    @property
    def pairs_taken(self) -> int:
        return sum(1 for s in self.selections if len(s) == 2)


def lookahead_anchored_coreness(
    graph: Graph, budget: int, pair_pool: int = 12
) -> LookaheadResult:
    """Greedy with pair lookahead over the top single candidates.

    Each step evaluates every candidate's single-anchor marginal gain
    (fast local follower search), then every pair among the
    ``pair_pool`` best singles (one core decomposition per pair). A
    pair is committed when its gain per anchor exceeds the best
    single's gain — the rate rule makes the comparison budget-fair.

    Args:
        graph: the social network.
        budget: total number of anchors.
        pair_pool: how many top single candidates enter pair evaluation.

    Raises:
        BudgetError: on an invalid budget.
    """
    if budget < 0 or budget > graph.num_vertices:
        raise BudgetError(f"budget {budget} invalid for n={graph.num_vertices}")
    start = _clock()
    result = LookaheadResult()
    base = core_decomposition(graph)
    base_coreness = base.coreness
    anchors: list[Vertex] = []
    cumulative = 0  # g(anchors, G) so far

    state = AnchoredState.build(graph)
    remaining = budget
    while remaining > 0:
        singles: dict[Vertex, int] = {}
        for u in state.candidates():
            own_gain = state.coreness(u) - base_coreness[u]
            singles[u] = find_followers(state, u).total - own_gain
        if not singles:
            break
        best_single = min(
            singles, key=lambda u: (-singles[u], _sort_key(u))
        )
        choice: tuple[Vertex, ...] = (best_single,)
        gain = singles[best_single]

        if remaining >= 2 and pair_pool >= 2:
            pool = sorted(singles, key=lambda u: (-singles[u], _sort_key(u)))
            pool = pool[:pair_pool]
            best_pair: tuple[Vertex, ...] | None = None
            best_pair_gain = -1
            anchor_set = set(anchors)
            for x, y in combinations(pool, 2):
                trial = core_decomposition(graph, anchor_set | {x, y})
                pair_gain = (
                    sum(
                        trial.coreness[w] - base_coreness[w]
                        for w in graph.vertices()
                        if w not in anchor_set and w != x and w != y
                    )
                    - cumulative
                )
                if pair_gain > best_pair_gain:
                    best_pair, best_pair_gain = (x, y), pair_gain
            if best_pair is not None and best_pair_gain > 2 * gain:
                choice, gain = best_pair, best_pair_gain

        anchors.extend(choice)
        for chosen in choice:
            apply_anchor(state, chosen, compute_removals=False)
        remaining -= len(choice)
        cumulative += gain
        result.selections.append(choice)
        result.gains.append(gain)
    result.anchors = anchors
    result.elapsed_seconds = _clock() - start
    return result
