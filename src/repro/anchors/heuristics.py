"""The simple anchor-selection heuristics compared in Figure 6 (Table 5).

Each heuristic statically scores every vertex and anchors the top ``b``:

* ``Rand`` — uniform random vertices;
* ``Deg``  — highest degree;
* ``Deg-C`` — highest ``deg(u) - c(u)`` (degree "slack" over coreness);
* ``SD``   — highest *successive degree*: the number of neighbors with a
  larger shell-layer pair, i.e. the size of the first hop of every
  upstair path out of ``u`` (Theorem 4.14 motivates it).

They return the anchor list; evaluate with
:func:`repro.core.coreness_gain`.
"""

from __future__ import annotations

import random

from repro.core.decomposition import _sort_key, core_decomposition, peel_decomposition
from repro.core.layers import all_successive_degrees
from repro.errors import BudgetError
from repro.graphs.graph import Graph, Vertex


def _check_budget(graph: Graph, budget: int) -> None:
    if budget < 0 or budget > graph.num_vertices:
        raise BudgetError(
            f"budget {budget} is invalid for a graph with {graph.num_vertices} vertices"
        )


def _top_by_score(graph: Graph, scores: dict[Vertex, float], budget: int) -> list[Vertex]:
    """Top-``budget`` vertices by score, ties broken by smallest id."""
    ranked = sorted(graph.vertices(), key=lambda u: (-scores[u], _sort_key(u)))
    return ranked[:budget]


def random_anchors(  # lint: obs-ok one seeded sample, measured by caller
    graph: Graph, budget: int, seed: int | None = None
) -> list[Vertex]:
    """``Rand``: a uniform random anchor set."""
    _check_budget(graph, budget)
    rng = random.Random(seed)
    return rng.sample(sorted(graph.vertices(), key=_sort_key), budget)


def degree_anchors(  # lint: obs-ok one sort, measured by caller
    graph: Graph, budget: int
) -> list[Vertex]:
    """``Deg``: the ``budget`` highest-degree vertices."""
    _check_budget(graph, budget)
    return _top_by_score(graph, {u: graph.degree(u) for u in graph.vertices()}, budget)


def degree_minus_coreness_anchors(graph: Graph, budget: int) -> list[Vertex]:
    """``Deg-C``: the highest ``deg(u, G) - c(u)`` vertices."""
    _check_budget(graph, budget)
    decomposition = core_decomposition(graph)
    scores = {
        u: graph.degree(u) - decomposition.coreness[u] for u in graph.vertices()
    }
    return _top_by_score(graph, scores, budget)


def successive_degree_anchors(graph: Graph, budget: int) -> list[Vertex]:
    """``SD``: the highest successive-degree vertices."""
    _check_budget(graph, budget)
    decomposition = peel_decomposition(graph)
    scores = all_successive_degrees(graph, decomposition)
    return _top_by_score(graph, scores, budget)


HEURISTICS = {
    "Rand": random_anchors,
    "Deg": degree_anchors,
    "Deg-C": degree_minus_coreness_anchors,
    "SD": successive_degree_anchors,
}
