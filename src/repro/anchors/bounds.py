"""Upper bound of the follower count (Section 4.5, Equations 1-3).

For a candidate anchor ``x`` the bound ``UB_sigma(x)`` dominates
``|F(x)|`` (Theorem 4.17): every vertex reachable from ``x`` by an
upstair path is counted at least once. It is computed for *all* vertices
in one O(m) pass by processing vertices in reverse order of their
shell-layer pairs — a topological order of the upstair-edge DAG — so the
own-node bound of every vertex is ready before anyone sums over it.

The GAC algorithm scans candidates in decreasing bound order and skips
any candidate whose bound cannot beat the best gain found so far; after
each anchoring, cached exact counts ``F[u][id]`` replace the per-node
bound parts where available ("Upper Bound Refining").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anchors.state import AnchoredState
from repro.core.tree import NodeId
from repro.graphs.graph import Vertex
from repro.lint.markers import pure


@dataclass
class UpperBounds:
    """Per-candidate follower-count bounds.

    Attributes:
        own: ``UB_{i_u}(u)`` — bound on followers inside u's own node (Eq 1).
        parts: per node id in ``sn(u)``, the bound on ``|F[u][id]|``
            (``own[u]`` for the own node, Eq 2 for deeper nodes).
        total: ``UB_sigma(u)`` (Eq 3) — the sum of ``parts[u]``.
    """

    own: dict[Vertex, int] = field(default_factory=dict)
    parts: dict[Vertex, dict[NodeId, int]] = field(default_factory=dict)
    total: dict[Vertex, int] = field(default_factory=dict)


@pure
def compute_upper_bounds(state: AnchoredState) -> UpperBounds:
    """Equations 1-3 for every non-anchor vertex of the current state."""
    graph = state.graph
    anchors = state.anchors
    pairs = state.decomposition.shell_layer
    bounds = UpperBounds()
    own = bounds.own

    # Reverse topological order of the upstair DAG: descending (k, i).
    # Ties (equal pairs) carry no upstair edges, so any tie order works.
    candidates = [u for u in graph.vertices() if u not in anchors]
    for u in sorted(candidates, key=lambda v: pairs[v], reverse=True):
        ku, iu = pairs[u]
        acc = 0
        for v in graph.neighbors(u):  # lint: order-ok commutative sum accumulation
            if v in anchors:
                continue
            kv, iv = pairs[v]
            if kv == ku and iv > iu:
                acc += own[v] + 1
        own[u] = acc

    node_of = state.tree.node_of
    for u in candidates:
        i_u = node_of[u].node_id
        parts: dict[NodeId, int] = {i_u: own[u]}
        tca_u = state.tca(u)
        for nid in state.sn(u):  # lint: order-ok parts feed an order-free sum
            if nid == i_u:
                continue
            parts[nid] = sum(own[v] + 1 for v in tca_u[nid] if v not in anchors)
        bounds.parts[u] = parts
        bounds.total[u] = sum(parts.values())
    return bounds


@pure
def refined_total(  # lint: obs-ok pure arithmetic over precomputed bounds
    u: Vertex,
    bounds: UpperBounds,
    cached_counts: dict[NodeId, int],
) -> int:
    """``UB_sigma(u)`` with exact cached counts substituted where valid.

    A cached ``|F[u][id]|`` is both exact and <= the bound part, so the
    refined total is a tighter valid bound (Section 4.5, "Upper Bound
    Refining"). ``cached_counts`` must already be validated against the
    current state (see ``FollowerCache.valid_counts``).
    """
    parts = bounds.parts[u]
    return sum(cached_counts.get(nid, part) for nid, part in parts.items())
