"""The exact solver: exhaustive search over all b-subsets (Figure 7).

Cost grows as ``C(n, b)`` full core decompositions, so this is only
usable on the ~100-vertex extracted subgraphs the paper evaluates it on.
A ``max_combinations`` guard refuses astronomically large enumerations
up front instead of hanging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

from repro.core.decomposition import _sort_key, core_decomposition, coreness_gain
from repro.errors import BudgetError
from repro.graphs.graph import Graph, Vertex


@dataclass(frozen=True)
class ExactResult:
    """Optimal anchor set and bookkeeping of the enumeration."""

    anchors: tuple[Vertex, ...]
    gain: int
    combinations_tested: int


def exact_anchored_coreness(
    graph: Graph, budget: int, max_combinations: int = 10_000_000
) -> ExactResult:
    """Find the optimal anchor set by enumerating every b-subset.

    Args:
        graph: the input graph.
        budget: anchor budget ``b``.
        max_combinations: refuse to start when ``C(n, b)`` exceeds this.

    Raises:
        BudgetError: on an invalid budget or an enumeration larger than
            ``max_combinations``.
    """
    n = graph.num_vertices
    if budget < 0 or budget > n:
        raise BudgetError(f"budget {budget} is invalid for n={n}")
    total = math.comb(n, budget)
    if total > max_combinations:
        raise BudgetError(
            f"C({n}, {budget}) = {total} exceeds max_combinations={max_combinations}"
        )
    base = core_decomposition(graph)
    vertices = sorted(graph.vertices(), key=_sort_key)
    best_anchors: tuple[Vertex, ...] = ()
    best_gain = -1
    tested = 0
    for subset in combinations(vertices, budget):
        tested += 1
        gain = coreness_gain(graph, subset, base=base)
        if gain > best_gain:
            best_anchors, best_gain = subset, gain
    return ExactResult(anchors=best_anchors, gain=max(best_gain, 0), combinations_tested=tested)
