"""Parent-side process pool for the GAC candidate scan.

:class:`CandidateScanPool` owns a ``ProcessPoolExecutor`` whose workers
attach a one-time shared-memory export of the graph's CSR view
(:mod:`repro.parallel.shm`) and evaluate chunks of candidates
(:mod:`repro.parallel.worker`). The pool itself is policy-free: it
ships task chunks and returns results in dispatch order; the
determinism-preserving two-phase scan (bound-sorted chunks, threshold
barriers, serial replay merge) lives with the greedy in
:mod:`repro.anchors.gac`.

Dispatch economics (the PR-4 slowdown fix): the epoch header — round
number plus the anchor lineage — is pickled once per *chunk*, not once
per task; chunk sizes adapt to the previous dispatch's measured
per-task latency (``REPRO_PARALLEL_CHUNK`` pins them for tests);
results return through a preallocated :class:`~repro.parallel.shm.SharedResults`
block of fixed-width int rows instead of pickled ``TaskResult`` objects
(``REPRO_PARALLEL_RESULTS=pickle`` restores the legacy channel).
Adaptive sizing is results-safe because the greedy's replay phase
discards speculative extras — a bigger or smaller chunk can only change
*work*, never the selected anchor.

Observability: every chunk return piggybacks a small telemetry tuple
(worker pid, execute start/end clocks, lineage-cache deltas, and — for
traced dispatches — the worker's span batch, see
:mod:`repro.obs.shipping`). The pool folds it into the registry as
``parallel.*`` health gauges/counters (dispatch latency, queue-wait vs
execute time, per-worker busy seconds, utilization, EWMA chunk sizing,
cache hit/advance/rebuild counts) and merges shipped spans into the
parent trace with per-worker pid lanes. Telemetry observes only: the
merged results are byte-identical whether or not tracing is on.

Failure model: any worker/pickling/executor/decode error marks the pool
``broken`` and propagates to the caller, which falls back to the serial
scan — dispatch never mutates shared algorithm state, so a failed batch
leaves the round exactly where the serial scan would start it. A hard
worker death surfaces as ``BrokenProcessPool`` (the executor, unlike
``multiprocessing.Pool``, never hangs on it).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro import obs as _obs
from repro.core.tree import NodeId
from repro.faults import fault_point as _fault_point
from repro.obs import shipping as _shipping
from repro.graphs.csr import csr_view
from repro.graphs.graph import Graph, Vertex
from repro.parallel import worker as _worker
from repro.parallel.shm import ResultsHandle, SharedCSR, SharedResults
from repro.parallel.util import (
    ENV_RESULTS,
    ENV_START,
    chunked,
    resolve_chunk_override,
)
from repro.parallel.worker import ROW_FIXED_INTS

#: First-dispatch fallback before any latency measurement exists: keep
#: chunks small enough for load balancing but large enough to amortize
#: the per-submission IPC.
_TARGET_BATCHES_PER_WORKER = 4
#: Adaptive target: one chunk should cost a worker about this long, so
#: cheap tasks coalesce into big chunks and expensive ones spread out.
_TARGET_CHUNK_SECONDS = 0.02
#: Adaptive target for the greedy's speculative dispatch window (the
#: bound-sorted slice evaluated between threshold barriers).
_TARGET_DISPATCH_SECONDS = 0.10
#: First-round dispatch window per worker (pre-latency heuristic).
_CHUNK_PER_WORKER = 8
#: Hard cap on the adaptive dispatch window.
_MAX_DISPATCH = 65536
#: Inline per-node count pairs a result row can hold before the result
#: overflows to the pickle channel.
_ROW_COUNT_PAIRS = 24
#: The fixed counter table shipped to workers at init: the only delta
#: names a result row can encode (everything a follower evaluation can
#: legitimately touch). An unknown name overflows to pickle — correct,
#: just slower — so extending the obs registry never corrupts rows.
_COUNTER_NAMES = (
    _obs.BUCKET_POPS,
    _obs.PEEL_POPS,
    _obs.CSR_BUILDS,
    _obs.CSR_CACHE_HITS,
    _obs.EXPLORED_NODES,
    _obs.REUSED_NODES,
    _obs.VISITED_VERTICES,
    _obs.EVALUATED_CANDIDATES,
    _obs.PRUNED_CANDIDATES,
    _obs.REUSE_SERVED,
    _obs.REUSE_DROPPED,
)
_ROW_INTS = ROW_FIXED_INTS + len(_COUNTER_NAMES) + 2 * _ROW_COUNT_PAIRS
#: Initial result-block rows; grown geometrically on demand.
_MIN_RESULT_ROWS = 256


class PoolUnavailable(RuntimeError):
    """A candidate-scan pool cannot be built in this configuration."""


def _start_method(override: str | None = None) -> str:
    """The multiprocessing start method: override, env, else prefer fork.

    ``fork`` makes worker start-up (and therefore small-graph runs)
    dramatically cheaper than ``spawn``; results are identical either
    way because workers rebuild all state from the shared CSR + task
    payloads. Unknown or unavailable requests fall back silently — the
    knob tunes speed, never semantics.
    """
    requested = (override or os.environ.get(ENV_START, "")).strip()
    available = multiprocessing.get_all_start_methods()
    if requested in available:
        return requested
    return "fork" if "fork" in available else available[0]


class CandidateScanPool:
    """A worker pool bound to one graph snapshot for follower evaluation.

    Args:
        graph: the (unmutated) graph the greedy is running on; its CSR
            view is exported to shared memory once, here.
        workers: process count (must be >= 2 — the caller handles the
            serial cases).
        follower_method: ``"tree"`` (Algorithm 4) or ``"naive"``.
        start_method: optional multiprocessing start-method override
            (defaults to ``REPRO_PARALLEL_START``, then ``fork``).

    Raises:
        PoolUnavailable: no CSR view (``REPRO_CSR=0`` or unorderable
            labels), a bad worker count, or executor start-up failure.
    """

    __slots__ = (
        "workers",
        "broken",
        "spans_shipped",
        "_shared",
        "_executor",
        "_results",
        "_labels",
        "_index",
        "_latency",
        "_use_shm_results",
        "_chunk_seq",
        "_busy_by_pid",
        "_busy_total",
        "_elapsed_total",
        "_queue_wait_total",
    )

    def __init__(
        self,
        graph: Graph,
        workers: int,
        *,
        follower_method: str = "tree",
        start_method: str | None = None,
    ) -> None:
        if workers < 2:
            raise PoolUnavailable(f"need >= 2 workers for a pool, got {workers}")
        csr = csr_view(graph)
        if csr is None:
            raise PoolUnavailable(
                "graph has no CSR view (REPRO_CSR=0 or unorderable labels)"
            )
        self.workers = workers
        self.broken = False
        #: Worker span events merged into the parent trace so far.
        self.spans_shipped = 0
        self._labels = csr.labels
        self._index = csr.index
        self._latency: float | None = None
        self._chunk_seq = 0
        self._busy_by_pid: dict[int, float] = {}
        self._busy_total = 0.0
        self._elapsed_total = 0.0
        self._queue_wait_total = 0.0
        self._results: SharedResults | None = None
        self._use_shm_results = (
            os.environ.get(ENV_RESULTS, "").strip().lower() != "pickle"
        )
        self._shared = SharedCSR.export(csr)
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context(_start_method(start_method)),
                initializer=_worker.init_worker,
                initargs=(self._shared.handle, follower_method, _COUNTER_NAMES),
            )
        except Exception as exc:
            self._shared.close()
            raise PoolUnavailable(f"process pool failed to start: {exc}") from exc

    # ------------------------------------------------------------------
    # Adaptive sizing
    # ------------------------------------------------------------------
    def _chunk_tasks(self, n: int) -> int:
        """Tasks per chunk for an ``n``-task dispatch.

        ``REPRO_PARALLEL_CHUNK`` pins the size (clamped to the dispatch);
        otherwise the measured per-task latency sizes chunks to about
        :data:`_TARGET_CHUNK_SECONDS` each, capped so every worker still
        gets work. Before any measurement exists, fall back to the PR-4
        static split.
        """
        override = resolve_chunk_override()
        if override is not None:
            return max(1, min(override, n))
        if self._latency is not None and self._latency > 0:
            size = round(_TARGET_CHUNK_SECONDS / self._latency)
        else:
            size = -(-n // (self.workers * _TARGET_BATCHES_PER_WORKER))
        balanced = -(-n // self.workers)
        return max(1, min(size, balanced))

    def dispatch_size(self) -> int:
        """Candidates the greedy should dispatch between threshold barriers.

        Sized so one speculative window costs the pool about
        :data:`_TARGET_DISPATCH_SECONDS` of per-task work — small enough
        that the simulated threshold stays fresh (little wasted
        speculation), large enough that barrier overhead amortizes.
        Floor of two full chunks per worker; pre-latency it reproduces
        the PR-4 static window.
        """
        if self._latency is not None and self._latency > 0:
            size = round(_TARGET_DISPATCH_SECONDS / self._latency)
            return max(2 * self.workers, min(size, _MAX_DISPATCH))
        return max(16, _CHUNK_PER_WORKER * self.workers)

    # ------------------------------------------------------------------
    # Result rows
    # ------------------------------------------------------------------
    def _ensure_results(self, n: int) -> "ResultsHandle | None":
        """A result block with at least ``n`` rows, or ``None`` in pickle mode.

        Grows geometrically; a grown block gets a fresh shm name, which
        is what tells workers to re-attach.
        """
        if not self._use_shm_results:
            return None
        current = self._results
        if current is not None and current.handle.rows >= n:
            return current.handle
        rows = max(n, _MIN_RESULT_ROWS)
        if current is not None:
            rows = max(rows, 2 * current.handle.rows)
            current.close()
        self._results = SharedResults.create(rows, _ROW_INTS)
        return self._results.handle

    def _decode_row(self, slot: int, candidate: Vertex) -> _worker.TaskResult:
        """Decode the shared row at ``slot`` back into a ``TaskResult``.

        The row's first int is the candidate id **plus one** (a zeroed,
        never-written row can never validate); a mismatch means the
        protocol broke and the whole dispatch is discarded in favor of
        the serial scan.
        """
        results = self._results
        assert results is not None  # only called when a handle was dispatched
        row = results.row(slot)
        expected = self._index[candidate] + 1
        if row[0] != expected:
            raise RuntimeError(
                f"result row {slot} holds candidate tag {row[0]}, "
                f"expected {expected} — shared-row protocol violation"
            )
        total = row[1]
        n_counts = row[2]
        deltas: dict[str, int] = {}
        for at, name in enumerate(_COUNTER_NAMES):
            value = row[ROW_FIXED_INTS + at]
            if value:
                deltas[name] = value
        if n_counts < 0:
            counts: dict[NodeId, int] | None = None
        else:
            labels = self._labels
            base = ROW_FIXED_INTS + len(_COUNTER_NAMES)
            counts = {}
            for pair in range(n_counts):
                at = base + 2 * pair
                counts[labels[row[at]]] = row[at + 1]
        return (candidate, total, counts, deltas)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def evaluate(
        self,
        epoch: int,
        anchors: tuple[Vertex, ...],
        tasks: "list[tuple[Vertex, dict[NodeId, int] | None]]",
        kernel: "str | None" = None,
    ) -> list[_worker.TaskResult]:
        """Evaluate one batch of candidates; results in dispatch order.

        ``anchors`` is the anchor *lineage* in application order (sorted
        initial anchors, then selections) — workers key their persistent
        state cache on it. ``kernel`` is the concrete follower-kernel
        name the parent resolved; it rides in the chunk header so every
        worker evaluation runs the backend the serial scan would (a
        spawned worker does not inherit the parent's kwargs, only its
        environment). Any failure (worker crash, pickling error, broken
        executor, row-decode mismatch) marks the pool broken and
        re-raises; the caller falls back to the serial scan for the
        whole round.
        """
        n = len(tasks)
        header: _worker.ChunkHeader = (epoch, anchors, kernel)
        trace = _obs.tracing_enabled()
        try:
            handle = self._ensure_results(n)
            size = self._chunk_tasks(n)
            payloads: list[_worker.ChunkPayload] = []
            slot_base = 0
            for chunk in chunked(tasks, size):
                payloads.append(
                    (header, slot_base, handle, tuple(chunk), (self._chunk_seq, trace))
                )
                self._chunk_seq += 1
                slot_base += len(chunk)
            _fault_point("parallel.dispatch")
            start = _obs.clock()
            returns = list(self._executor.map(_worker.evaluate_chunk, payloads))
            elapsed = _obs.clock() - start
            overflows = [chunk_return[0] for chunk_return in returns]
            results, overflowed = self._merge(payloads, overflows, handle)
            self._record_health(
                [chunk_return[1] for chunk_return in returns], start, elapsed
            )
        except Exception:
            self.broken = True
            raise
        per_task = elapsed / n if n else elapsed
        self._latency = (
            per_task
            if self._latency is None
            else 0.5 * (self._latency + per_task)
        )
        _obs.gauge("parallel.task_latency_ewma_s", self._latency)
        _obs.gauge("parallel.chunk_size", size)
        _obs.gauge("parallel.dispatch_window", self.dispatch_size())
        _obs.add(_obs.PARALLEL_TASKS, n)
        _obs.add(_obs.PARALLEL_CHUNKS, len(payloads))
        _obs.add(_obs.PARALLEL_DISPATCHES)
        if overflowed:
            _obs.add(_obs.PARALLEL_RESULT_OVERFLOWS, overflowed)
        return results

    def _record_health(
        self,
        telemetry: "list[_worker.ChunkTelemetry]",
        dispatch_start: float,
        elapsed: float,
    ) -> None:
        """Fold one dispatch's worker telemetry into the obs registry.

        Per chunk the worker reports its pid, execute start/end clocks
        (``perf_counter`` is ``CLOCK_MONOTONIC`` on Linux, so parent and
        worker readings share a timebase; elsewhere queue-wait figures
        are best-effort), lineage-cache deltas, and the span batch for
        traced dispatches. Everything lands in gauges/counters so
        ``python -m repro.obs report`` can print a pool section without
        holding a pool reference.
        """
        busy = 0.0
        queue_wait = 0.0
        hits = advances = rebuilds = 0
        batches = 0
        shipped = 0
        for pid, _chunk_id, exec_start, exec_end, cache_deltas, batch in telemetry:
            busy += exec_end - exec_start
            queue_wait += max(0.0, exec_start - dispatch_start)
            hits += cache_deltas[0]
            advances += cache_deltas[1]
            rebuilds += cache_deltas[2]
            self._busy_by_pid[pid] = self._busy_by_pid.get(pid, 0.0) + (
                exec_end - exec_start
            )
            if batch:
                batches += 1
                shipped += _shipping.absorb_batch(batch, pid)
        self._busy_total += busy
        self._elapsed_total += elapsed
        self._queue_wait_total += queue_wait
        self.spans_shipped += shipped
        if hits:
            _obs.add(_obs.PARALLEL_STATE_HITS, hits)
        if advances:
            _obs.add(_obs.PARALLEL_STATE_ADVANCES, advances)
        if rebuilds:
            _obs.add(_obs.PARALLEL_STATE_REBUILDS, rebuilds)
        if batches:
            _obs.add(_obs.PARALLEL_SPAN_BATCHES, batches)
            _obs.add(_obs.PARALLEL_SPANS_SHIPPED, shipped)
        _obs.gauge("parallel.dispatch_latency_s", elapsed)
        _obs.gauge("parallel.queue_wait_s", self._queue_wait_total)
        _obs.gauge("parallel.execute_s", self._busy_total)
        if self._elapsed_total > 0:
            _obs.gauge(
                "parallel.utilization",
                min(1.0, self._busy_total / (self._elapsed_total * self.workers)),
            )
        for pid, busy_s in sorted(self._busy_by_pid.items()):
            _obs.gauge(f"parallel.worker.{pid}.busy_s", busy_s)

    def _merge(
        self,
        payloads: "list[_worker.ChunkPayload]",
        overflows: "list[_worker.ChunkOverflow]",
        handle: "ResultsHandle | None",
    ) -> tuple[list[_worker.TaskResult], int]:
        """Stitch shared rows and pickle-channel overflows into task order."""
        results: list[_worker.TaskResult] = []
        overflowed = 0
        for payload, chunk_overflow in zip(payloads, overflows):
            _header, slot_base, _handle, chunk_tasks, _meta = payload
            by_offset = dict(chunk_overflow)
            overflowed += len(chunk_overflow)
            for offset, (candidate, _reusable) in enumerate(chunk_tasks):
                spilled = by_offset.get(offset)
                if spilled is not None:
                    results.append(spilled)
                elif handle is None:
                    raise RuntimeError(
                        f"pickle-mode worker returned no result for task "
                        f"offset {offset}"
                    )
                else:
                    results.append(self._decode_row(slot_base + offset, candidate))
        return results, overflowed

    def close(self) -> None:
        """Shut the executor down and release every shared-memory block.

        Teardown failures are swallowed (gauged as ``parallel.close_error``):
        the scan results are already merged by the time the pool closes,
        and a cleanup error must not fail a finished run. Each block gets
        its own attempt — an executor-shutdown error can no longer skip
        the shared releases (the PR-4 leak), and the OS reclaims anything
        still mapped at process exit. Hosts the ``shm.exporter_finalize``
        fault site once per block.
        """
        try:
            self._executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            _obs.gauge("parallel.close_error", 1.0)
        for block in (self._results, self._shared):
            if block is None:
                continue
            try:
                _fault_point("shm.exporter_finalize")
                block.close()
            except Exception:
                _obs.gauge("parallel.close_error", 1.0)

    def __repr__(self) -> str:
        state = "broken" if self.broken else "ready"
        return f"CandidateScanPool(workers={self.workers}, {state})"
