"""Parent-side process pool for the GAC candidate scan.

:class:`CandidateScanPool` owns a ``ProcessPoolExecutor`` whose workers
attach a one-time shared-memory export of the graph's CSR view
(:mod:`repro.parallel.shm`) and evaluate ``(epoch, candidate)`` tasks
(:mod:`repro.parallel.worker`). The pool itself is policy-free: it
ships task batches and returns results in dispatch order; the
determinism-preserving two-phase scan (bound-sorted chunks, threshold
barriers, serial replay merge) lives with the greedy in
:mod:`repro.anchors.gac`.

Failure model: any worker/pickling/executor error marks the pool
``broken`` and propagates to the caller, which falls back to the serial
scan — dispatch never mutates shared algorithm state, so a failed batch
leaves the round exactly where the serial scan would start it. A hard
worker death surfaces as ``BrokenProcessPool`` (the executor, unlike
``multiprocessing.Pool``, never hangs on it).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro import obs as _obs
from repro.core.tree import NodeId
from repro.faults import fault_point as _fault_point
from repro.graphs.csr import csr_view
from repro.graphs.graph import Graph, Vertex
from repro.parallel import worker as _worker
from repro.parallel.shm import SharedCSR
from repro.parallel.util import ENV_START

#: Keep batches small enough for load balancing across workers but
#: large enough to amortize the per-submission IPC.
_TARGET_BATCHES_PER_WORKER = 4


class PoolUnavailable(RuntimeError):
    """A candidate-scan pool cannot be built in this configuration."""


def _start_method(override: str | None = None) -> str:
    """The multiprocessing start method: override, env, else prefer fork.

    ``fork`` makes worker start-up (and therefore small-graph runs)
    dramatically cheaper than ``spawn``; results are identical either
    way because workers rebuild all state from the shared CSR + task
    payloads. Unknown or unavailable requests fall back silently — the
    knob tunes speed, never semantics.
    """
    requested = (override or os.environ.get(ENV_START, "")).strip()
    available = multiprocessing.get_all_start_methods()
    if requested in available:
        return requested
    return "fork" if "fork" in available else available[0]


class CandidateScanPool:
    """A worker pool bound to one graph snapshot for follower evaluation.

    Args:
        graph: the (unmutated) graph the greedy is running on; its CSR
            view is exported to shared memory once, here.
        workers: process count (must be >= 2 — the caller handles the
            serial cases).
        follower_method: ``"tree"`` (Algorithm 4) or ``"naive"``.
        start_method: optional multiprocessing start-method override
            (defaults to ``REPRO_PARALLEL_START``, then ``fork``).

    Raises:
        PoolUnavailable: no CSR view (``REPRO_CSR=0`` or unorderable
            labels), a bad worker count, or executor start-up failure.
    """

    __slots__ = ("workers", "broken", "_shared", "_executor")

    def __init__(
        self,
        graph: Graph,
        workers: int,
        *,
        follower_method: str = "tree",
        start_method: str | None = None,
    ) -> None:
        if workers < 2:
            raise PoolUnavailable(f"need >= 2 workers for a pool, got {workers}")
        csr = csr_view(graph)
        if csr is None:
            raise PoolUnavailable(
                "graph has no CSR view (REPRO_CSR=0 or unorderable labels)"
            )
        self.workers = workers
        self.broken = False
        self._shared = SharedCSR.export(csr)
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context(_start_method(start_method)),
                initializer=_worker.init_worker,
                initargs=(self._shared.handle, follower_method),
            )
        except Exception as exc:
            self._shared.close()
            raise PoolUnavailable(f"process pool failed to start: {exc}") from exc

    def evaluate(
        self,
        epoch: int,
        anchors: tuple[Vertex, ...],
        tasks: "list[tuple[Vertex, dict[NodeId, int] | None]]",
    ) -> list[_worker.TaskResult]:
        """Evaluate one batch of candidates; results in dispatch order.

        Any failure (worker crash, pickling error, broken executor)
        marks the pool broken and re-raises; the caller falls back to
        the serial scan for the whole round.
        """
        payloads: list[_worker.TaskPayload] = [
            (epoch, anchors, candidate, reusable) for candidate, reusable in tasks
        ]
        chunksize = max(
            1, -(-len(payloads) // (self.workers * _TARGET_BATCHES_PER_WORKER))
        )
        try:
            _fault_point("parallel.dispatch")
            results = list(
                self._executor.map(_worker.evaluate, payloads, chunksize=chunksize)
            )
        except Exception:
            self.broken = True
            raise
        _obs.add(_obs.PARALLEL_TASKS, len(payloads))
        _obs.add(_obs.PARALLEL_CHUNKS)
        return results

    def close(self) -> None:
        """Shut the executor down and release the shared-memory export.

        Teardown failures are swallowed (gauged as ``parallel.close_error``):
        the scan results are already merged by the time the pool closes,
        and a cleanup error must not fail a finished run. The OS reclaims
        a leaked mapping at process exit. Hosts the ``shm.exporter_finalize``
        fault site.
        """
        self._executor.shutdown(wait=False, cancel_futures=True)
        try:
            _fault_point("shm.exporter_finalize")
            self._shared.close()
        except Exception:
            _obs.gauge("parallel.close_error", 1.0)

    def __repr__(self) -> str:
        state = "broken" if self.broken else "ready"
        return f"CandidateScanPool(workers={self.workers}, {state})"
