"""Worker-process side of the candidate-scan pool.

Each worker attaches the shared CSR block once (pool initializer),
materializes the adjacency :class:`~repro.graphs.graph.Graph` from it —
with the zero-copy CSR view pre-interned, so substrate kernels hit the
flat fast path exactly like the parent's — and keeps one *persistent*
derived state across rounds. Tasks arrive in chunks: one
:data:`ChunkPayload` carries the epoch header (epoch number + the
anchor lineage in application order) exactly once, then a tuple of
``(candidate, reusable_counts)`` tasks, so the per-task pickle cost of
the old one-payload-per-candidate protocol is gone.

Persistent state: ``_state_for`` keys its cache on the anchor lineage,
not just the epoch. When a new epoch's lineage extends the cached one —
the common case, the greedy adds one anchor per round — the worker
replays the paper's local subtree rebuild
(:func:`repro.anchors.incremental.apply_anchor`) for just the new
anchors instead of rebuilding ``AnchoredState`` from scratch; a full
rebuild happens only when the lineage diverges (fresh pool, resumed
run, naive method). ``apply_anchor``'s oracle — structural equality
with a fresh build — is what keeps this byte-identical.

Results return through the parent's :class:`~repro.parallel.shm.SharedResults`
block when one is attached: each task encodes ``(candidate id, follower
total, counter deltas, inline per-node counts)`` as a fixed-width int
row in the disjoint slot the parent assigned. Rows that cannot hold a
result (oversized count sets, counter names outside the agreed table)
fall back to the executor's pickle channel per task — the overflow list
is the chunk's return value, so the common case ships back an empty
list.

Determinism contract: a worker's state for a lineage equals
``AnchoredState.build(graph, set(lineage))`` structurally, and every
derived structure is deterministic given graph + anchor set, so
per-candidate follower reports are byte-identical to what the serial
scan would compute. Verification is forced off in workers; the work
counters of each evaluation are captured as a registry
:class:`~repro.obs.Window` delta and shipped back for the parent's
deterministic merge (state rebuilds run suspended — the serial scan
builds its state once outside the candidate loop too).

Tracing follows the *dispatch*: each chunk carries an explicit flag
(the parent's ``tracing_enabled()`` at dispatch time — explicit so fork
and spawn behave identically), and a traced chunk records spans through
:func:`repro.obs.shipping.worker_tracing` and ships them back in the
chunk's :data:`ChunkTelemetry`, tagged with the worker pid. Spans
observe, they never steer: traced and untraced chunks produce
byte-identical results, and an untraced chunk pays only the old
forced-off gate.
"""

from __future__ import annotations

import atexit
import os
from array import array

from repro import obs as _obs
from repro.obs import shipping as _shipping
from repro.anchors.followers import find_followers, followers_naive
from repro.anchors.incremental import apply_anchor
from repro.anchors.state import AnchoredState
from repro.core.decomposition import CoreDecomposition, core_decomposition
from repro.core.tree import NodeId
from repro.faults import fault_point as _fault_point
from repro.graphs.graph import Graph, Vertex
from repro.parallel.shm import (
    AttachedCSR,
    AttachedResults,
    ResultsHandle,
    SharedCSRHandle,
    attach,
    attach_results,
)
from repro.verify import verification as _verification

#: Chunk header, pickled once per chunk: (round epoch, anchors in
#: application order — sorted initial anchors first, then selections —
#: and the concrete follower-kernel name the parent resolved, so every
#: worker evaluation runs the same backend as the serial scan would;
#: ``None`` lets the worker resolve its own environment).
ChunkHeader = tuple[int, "tuple[Vertex, ...]", "str | None"]
#: One candidate evaluation: (candidate, validated reuse counts —
#: ``None`` on the no-reuse / naive paths).
Task = tuple[Vertex, "dict[NodeId, int] | None"]
#: Per-chunk shipping directives: (chunk id, unique within a pool's
#: lifetime; whether this chunk records and ships worker spans).
ChunkMeta = tuple[int, bool]
#: One dispatched chunk: (header, first result slot, result-block
#: handle — ``None`` forces the pickle channel — the tasks, and the
#: shipping directives).
ChunkPayload = tuple[
    ChunkHeader, int, "ResultsHandle | None", "tuple[Task, ...]", ChunkMeta
]
#: One result: (candidate, follower total, per-node counts for the
#: reuse cache — ``None`` on the naive path — and the counter deltas
#: this evaluation produced).
TaskResult = tuple[Vertex, int, "dict[NodeId, int] | None", "dict[str, int]"]
#: A chunk's pickle-channel return: only the results that did not fit
#: their shared row, as (offset within the chunk, result).
ChunkOverflow = list[tuple[int, TaskResult]]
#: Worker-side telemetry piggybacked on every chunk return: (worker
#: pid, echoed chunk id, execute start/end ``obs.clock`` readings —
#: ``CLOCK_MONOTONIC``, comparable with the parent's dispatch clock on
#: the same host — lineage-cache (hits, advances, rebuilds) deltas,
#: and the shipped span batch, ``None`` for untraced chunks).
ChunkTelemetry = tuple[
    int, int, float, float, "tuple[int, int, int]", "_shipping.SpanBatch | None"
]
#: What ``evaluate_chunk`` returns over the executor's pickle channel.
ChunkReturn = tuple[ChunkOverflow, ChunkTelemetry]

#: Row layout: [candidate id + 1, follower total, n_counts] + one int
#: per agreed counter name + ``(node id, count)`` pairs. The +1 tag
#: means a zeroed (never-written) row can never validate on the parent
#: side. ``n_counts`` is -1 when the result carries no reuse counts
#: (naive / no-reuse paths).
ROW_FIXED_INTS = 3
_NO_COUNTS = -1
_INT_MAX = 2**31 - 1


class _WorkerState:
    """Per-process singleton: attached graph + persistent derived state."""

    __slots__ = (
        "attachment",
        "graph",
        "follower_method",
        "counter_names",
        "counter_pos",
        "epoch",
        "lineage",
        "state",
        "base",
        "results",
        "cache_stats",
    )

    def __init__(
        self,
        attachment: AttachedCSR,
        graph: Graph,
        follower_method: str,
        counter_names: tuple[str, ...],
    ) -> None:
        self.attachment = attachment
        self.graph = graph
        self.follower_method = follower_method
        self.counter_names = counter_names
        self.counter_pos = {name: i for i, name in enumerate(counter_names)}
        self.epoch = -1
        self.lineage: tuple[Vertex, ...] | None = None
        self.state: AnchoredState | None = None
        self.base: CoreDecomposition | None = None
        self.results: AttachedResults | None = None
        #: Cumulative lineage-cache [hits, advances, rebuilds]; chunks
        #: ship per-chunk deltas of these to the parent's registry.
        self.cache_stats: list[int] = [0, 0, 0]


_state: _WorkerState | None = None


def init_worker(  # lint: obs-ok runs once before any traced dispatch; nothing to ship
    handle: SharedCSRHandle,
    follower_method: str,
    counter_names: tuple[str, ...] = (),
) -> None:
    """Pool initializer: attach the shared CSR and build the graph once.

    ``counter_names`` is the parent's fixed counter table — the agreed
    row encoding for counter deltas. Hosts the ``worker.shm_attach``
    fault site (armed via the inherited ``REPRO_FAULTS`` environment): a
    failed attach means the pool never becomes healthy and the first
    dispatch falls back to the serial scan.
    """
    global _state
    _fault_point("worker.shm_attach")
    attachment = attach(handle)
    with _obs.tracing(False), _obs.suspended():
        graph = attachment.csr.to_graph()
    _state = _WorkerState(attachment, graph, follower_method, counter_names)
    # Release the memoryviews before the mapping at interpreter exit;
    # the reverse order raises BufferError during teardown.
    atexit.register(attachment.close)


def _state_for(epoch: int, lineage: "tuple[Vertex, ...]") -> _WorkerState:
    """The persistent per-worker state, advanced to ``lineage``.

    Cache policy: same epoch → reuse as-is. A lineage that *extends* the
    cached one → apply the new anchors incrementally (Algorithm 3's
    local subtree rebuild, no invalidation bookkeeping — workers hold no
    follower cache). Anything else → full rebuild. The naive method
    always rebuilds its plain decomposition (no incremental oracle for
    it, and it is the measured Baseline anyway).
    """
    worker = _state
    if worker is None:
        raise RuntimeError("worker used before init_worker ran")
    if worker.epoch == epoch and worker.lineage == lineage:
        worker.cache_stats[0] += 1
        return worker
    anchor_set = frozenset(lineage)
    cached = worker.lineage
    with _obs.suspended():
        if worker.follower_method == "naive":
            worker.base = core_decomposition(worker.graph, anchor_set)
            worker.state = None
            worker.cache_stats[2] += 1
        elif (
            worker.state is not None
            and cached is not None
            and len(lineage) > len(cached)
            and lineage[: len(cached)] == cached
        ):
            for x in lineage[len(cached) :]:
                apply_anchor(worker.state, x, compute_removals=False)
            worker.cache_stats[1] += 1
        else:
            worker.state = AnchoredState.build(worker.graph, anchor_set)
            worker.base = None
            worker.cache_stats[2] += 1
    worker.epoch = epoch
    worker.lineage = lineage
    return worker


def _results_for(handle: "ResultsHandle | None") -> "AttachedResults | None":
    """The cached result-block attachment, re-attached when the parent
    grew (and therefore renamed) the block."""
    worker = _state
    if worker is None or handle is None:
        return None
    cached = worker.results
    if cached is not None and cached.handle.name == handle.name:
        return cached
    if cached is not None:
        cached.close()
    worker.results = attach_results(handle)
    return worker.results


def _encode_row(
    results: AttachedResults,
    slot: int,
    worker: _WorkerState,
    candidate_id: int,
    total: int,
    counts: "dict[NodeId, int] | None",
    deltas: "dict[str, int]",
) -> bool:
    """Encode one result into its shared row; False → pickle fallback.

    A result overflows when its count set exceeds the row's inline pair
    capacity, a counter name is outside the agreed table, or any value
    exceeds the row's 32-bit ints (graph-bounded values never do; the
    guard keeps a silent wrap impossible).
    """
    pos = worker.counter_pos
    names = worker.counter_names
    width = results.handle.row_ints
    pair_capacity = (width - ROW_FIXED_INTS - len(names)) // 2
    index = worker.attachment.csr.index
    delta_vector = [0] * len(names)
    for name, value in deltas.items():
        at = pos.get(name)
        if at is None or value > _INT_MAX:
            return False
        delta_vector[at] = value
    if counts is None:
        row = [candidate_id + 1, total, _NO_COUNTS]
        row.extend(delta_vector)
    else:
        if len(counts) > pair_capacity:
            return False
        row = [candidate_id + 1, total, len(counts)]
        row.extend(delta_vector)
        for nid, count in counts.items():
            if count > _INT_MAX:
                return False
            row.append(index[nid])
            row.append(count)
    results.write_row(slot, array("i", row))
    return True


def evaluate_chunk(payload: ChunkPayload) -> ChunkReturn:
    """Evaluate one chunk of candidates; results go to shared rows.

    The overflow half of the return holds only the results that did not
    fit their row (or everything, as ``(offset, result)`` pairs, when
    the parent dispatched without a result block); the telemetry half
    carries the worker pid, chunk id, execute start/end clocks,
    lineage-cache deltas, and — for traced chunks — the span batch. A
    traced chunk wraps its task loop in a ``worker.chunk`` span (inner
    ``followers.search`` spans nest under it), recorded via
    :func:`repro.obs.shipping.worker_tracing`. Hosts the
    ``worker.task_start`` and ``worker.follower_eval`` fault sites per
    task; both fire *before* the counter window opens, so an armed
    ``delay`` never leaks extra counts into the shipped deltas.
    """
    (epoch, lineage, kernel), slot_base, results_handle, tasks, (chunk_id, trace) = (
        payload
    )
    overflow: ChunkOverflow = []
    started = _obs.clock()
    stats_base = tuple(_state.cache_stats) if _state is not None else (0, 0, 0)
    with _shipping.worker_tracing(trace) as capture, _verification(False):
        results = _results_for(results_handle)
        anchors = frozenset(lineage)
        with _obs.span("worker.chunk", chunk=chunk_id, tasks=len(tasks)):
            for offset, (candidate, reusable) in enumerate(tasks):
                _fault_point("worker.task_start")
                worker = _state_for(epoch, lineage)
                _fault_point("worker.follower_eval")
                window = _obs.window()
                if worker.follower_method == "naive":
                    total = len(
                        followers_naive(
                            worker.graph, candidate, anchors=anchors, base=worker.base
                        )
                    )
                    counts: dict[NodeId, int] | None = None
                else:
                    state = worker.state
                    assert state is not None  # _state_for always builds one
                    report = find_followers(
                        state, candidate, reusable_counts=reusable, kernel=kernel
                    )
                    total = report.total
                    counts = dict(report.counts)
                deltas = window.counters()
                encoded = results is not None and _encode_row(
                    results,
                    slot_base + offset,
                    worker,
                    worker.attachment.csr.index[candidate],
                    total,
                    counts,
                    deltas,
                )
                if not encoded:
                    overflow.append((offset, (candidate, total, counts, deltas)))
    stats_now = _state.cache_stats if _state is not None else [0, 0, 0]
    telemetry: ChunkTelemetry = (
        os.getpid(),
        chunk_id,
        started,
        _obs.clock(),
        (
            stats_now[0] - stats_base[0],
            stats_now[1] - stats_base[1],
            stats_now[2] - stats_base[2],
        ),
        capture.batch(),
    )
    return overflow, telemetry
