"""Worker-process side of the candidate-scan pool.

Each worker attaches the shared CSR block once (pool initializer),
materializes the adjacency :class:`~repro.graphs.graph.Graph` from it —
with the zero-copy CSR view pre-interned, so substrate kernels hit the
flat fast path exactly like the parent's — and caches one derived state
per round epoch. Tasks then carry only ``(epoch, anchors, candidate,
reusable_counts)``.

Determinism contract: a worker rebuilds ``AnchoredState`` from the same
graph and anchor set the parent holds, and every derived structure
(decomposition, tree node ids, adjacency) is deterministic given those
inputs, so per-candidate follower reports are byte-identical to what the
serial scan would compute. Tracing and verification are forced off in
workers; the work counters of each evaluation are captured as a
registry :class:`~repro.obs.Window` delta and shipped back for the
parent's deterministic merge (epoch state rebuilds run suspended — the
serial scan builds its state once outside the candidate loop too).
"""

from __future__ import annotations

import atexit

from repro import obs as _obs
from repro.anchors.followers import find_followers, followers_naive
from repro.anchors.state import AnchoredState
from repro.core.decomposition import CoreDecomposition, core_decomposition
from repro.core.tree import NodeId
from repro.faults import fault_point as _fault_point
from repro.graphs.graph import Graph, Vertex
from repro.parallel.shm import AttachedCSR, SharedCSRHandle, attach
from repro.verify import verification as _verification

#: One dispatched candidate: (round epoch, sorted anchors, candidate,
#: validated reuse counts — ``None`` on the no-reuse / naive paths).
TaskPayload = tuple[int, "tuple[Vertex, ...]", Vertex, "dict[NodeId, int] | None"]
#: One result: (candidate, follower total, per-node counts for the
#: reuse cache — ``None`` on the naive path — and the counter deltas
#: this evaluation produced).
TaskResult = tuple[Vertex, int, "dict[NodeId, int] | None", "dict[str, int]"]


class _WorkerState:
    """Per-process singleton: the attached graph + per-epoch derived state."""

    __slots__ = ("attachment", "graph", "follower_method", "epoch", "state", "base")

    def __init__(
        self, attachment: AttachedCSR, graph: Graph, follower_method: str
    ) -> None:
        self.attachment = attachment
        self.graph = graph
        self.follower_method = follower_method
        self.epoch = -1
        self.state: AnchoredState | None = None
        self.base: CoreDecomposition | None = None


_state: _WorkerState | None = None


def init_worker(handle: SharedCSRHandle, follower_method: str) -> None:
    """Pool initializer: attach the shared CSR and build the graph once.

    Hosts the ``worker.shm_attach`` fault site (armed via the inherited
    ``REPRO_FAULTS`` environment): a failed attach means the pool never
    becomes healthy and the first dispatch falls back to the serial scan.
    """
    global _state
    _fault_point("worker.shm_attach")
    attachment = attach(handle)
    with _obs.tracing(False), _obs.suspended():
        graph = attachment.csr.to_graph()
    _state = _WorkerState(attachment, graph, follower_method)
    # Release the memoryviews before the mapping at interpreter exit;
    # the reverse order raises BufferError during teardown.
    atexit.register(attachment.close)


def _state_for(epoch: int, anchors: tuple[Vertex, ...]) -> _WorkerState:
    """The cached per-epoch state, rebuilt when the round moved on."""
    worker = _state
    if worker is None:
        raise RuntimeError("worker used before init_worker ran")
    if worker.epoch != epoch:
        anchor_set = frozenset(anchors)
        with _obs.suspended():
            if worker.follower_method == "naive":
                worker.base = core_decomposition(worker.graph, anchor_set)
                worker.state = None
            else:
                worker.state = AnchoredState.build(worker.graph, anchor_set)
                worker.base = None
        worker.epoch = epoch
    return worker


def evaluate(task: TaskPayload) -> TaskResult:
    """Evaluate one candidate's followers; ship result + counter deltas.

    Hosts the ``worker.task_start`` and ``worker.follower_eval`` fault
    sites. Both fire *before* the counter window opens, so an armed
    ``delay`` never leaks extra counts into the shipped deltas.
    """
    epoch, anchors, candidate, reusable = task
    _fault_point("worker.task_start")
    with _obs.tracing(False), _verification(False):
        worker = _state_for(epoch, anchors)
        _fault_point("worker.follower_eval")
        window = _obs.window()
        if worker.follower_method == "naive":
            total = len(
                followers_naive(
                    worker.graph, candidate, anchors=frozenset(anchors), base=worker.base
                )
            )
            counts: dict[NodeId, int] | None = None
        else:
            state = worker.state
            assert state is not None  # _state_for always builds one per epoch
            report = find_followers(state, candidate, reusable_counts=reusable)
            total = report.total
            counts = dict(report.counts)
        return candidate, total, counts, window.counters()
