"""CSR + result buffers in POSIX shared memory: export once, attach per worker.

The candidate-scan pool never pickles the graph per task. The parent
exports the interned CSR view's two ``array('i')`` buffers into one
:mod:`multiprocessing.shared_memory` block (:class:`SharedCSR`); each
worker attaches by name and rebuilds a zero-copy
:class:`~repro.graphs.csr.CSRGraph` whose ``indptr`` / ``neighbors``
are ``memoryview`` slices of the mapped block (:func:`attach`).

Results travel the same road in the opposite direction:
:class:`SharedResults` is a parent-owned block of fixed-width int rows,
one row per in-flight task. Workers attach (:func:`attach_results`) and
write each task's encoded result — candidate id, follower total,
counter deltas, inline per-node counts — into the disjoint row slot the
parent assigned to that task, so no two writers ever touch the same
bytes and no lock is needed. Results that do not fit a row (oversized
count sets, unknown counter names) fall back to the executor's pickle
channel per task. The export cost is paid once and amortized across
rounds (``BENCH_substrate.json`` records export ≈ 13× attach).

Lifecycle and crash safety
--------------------------
* The **exporter** owns the block: :meth:`SharedCSR.close` (also run by
  a ``weakref.finalize`` hook on garbage collection / interpreter exit)
  closes the mapping and unlinks the name. The finalizer is pid-guarded
  so ``fork``-started workers, which inherit the parent's object, can
  never unlink a segment the parent still serves.
* **Attachers** suppress ``multiprocessing.resource_tracker``
  registration for the duration of the attach: on this Python the
  tracker registers every attach as if it were a create (there is no
  ``track=False`` until 3.13), and a worker exiting would otherwise
  prompt the shared tracker to unlink the block under the parent.
  (Unregistering *after* the attach is not enough: the tracker's cache
  is a set, so concurrent workers' register/unregister pairs interleave
  into spurious ``KeyError`` noise.) The cost is that a crashed
  *parent* leaks the segment until the OS cleans ``/dev/shm``; the
  normal-exit path is covered by the finalizer.
* :meth:`AttachedCSR.close` releases the exported memoryviews *before*
  closing the mapping (closing first raises ``BufferError``); workers
  run it from an ``atexit`` hook so interpreter teardown stays silent.
"""

from __future__ import annotations

import os
import weakref
from array import array
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

from repro import obs as _obs
from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Vertex

_INT_FORMAT = "i"
_INT_SIZE = array(_INT_FORMAT).itemsize


@dataclass(frozen=True)
class SharedCSRHandle:
    """Picklable recipe for re-attaching an exported CSR view.

    ``labels`` is ``None`` when the original labels are exactly
    ``0..n-1`` (the common interned case), sparing the pickle; otherwise
    it carries the label list verbatim.
    """

    name: str
    num_vertices: int
    indptr_bytes: int
    neighbors_bytes: int
    itemsize: int
    labels: tuple[Vertex, ...] | None


def _register_noop(name: str, rtype: str) -> None:
    """Stand-in for ``resource_tracker.register`` during an attach."""


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without registering it with the resource tracker.

    ``SharedMemory(name=...)`` unconditionally registers on this Python
    (``track=False`` lands in 3.13); swapping the hook out for the call
    keeps attachers invisible to the tracker — the exporter alone owns
    the segment's lifetime. ``setattr`` keeps the patch explicit for the
    type checker; attach runs single-threaded in each worker.
    """
    original = resource_tracker.register
    setattr(resource_tracker, "register", _register_noop)  # lint: race-ok reversed below, attach-time only
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        setattr(resource_tracker, "register", original)  # lint: race-ok restores the patched hook


def _destroy(shm: shared_memory.SharedMemory, owner_pid: int) -> None:
    """Finalizer body: close + unlink, but only in the exporting process."""
    if os.getpid() != owner_pid:
        return
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked elsewhere
        pass


class SharedCSR:
    """Exporter-side owner of a CSR view copied into shared memory."""

    __slots__ = ("handle", "_shm", "_finalizer", "__weakref__")

    def __init__(self, shm: shared_memory.SharedMemory, handle: SharedCSRHandle) -> None:
        self._shm = shm
        self.handle = handle
        self._finalizer = weakref.finalize(self, _destroy, shm, os.getpid())

    @classmethod
    def export(cls, csr: CSRGraph) -> "SharedCSR":
        """Copy ``csr``'s flat buffers into one fresh shared-memory block."""
        indptr_bytes = csr.indptr.tobytes()
        neighbors_bytes = csr.neighbors.tobytes()
        size = max(1, len(indptr_bytes) + len(neighbors_bytes))
        shm = shared_memory.SharedMemory(create=True, size=size)
        shm.buf[: len(indptr_bytes)] = indptr_bytes
        shm.buf[len(indptr_bytes) : len(indptr_bytes) + len(neighbors_bytes)] = (
            neighbors_bytes
        )
        labels = csr.labels
        identity = all(
            isinstance(label, int) and label == i for i, label in enumerate(labels)
        )
        handle = SharedCSRHandle(
            name=shm.name,
            num_vertices=csr.num_vertices,
            indptr_bytes=len(indptr_bytes),
            neighbors_bytes=len(neighbors_bytes),
            itemsize=csr.indptr.itemsize,
            labels=None if identity else tuple(labels),
        )
        _obs.gauge("shm.csr_bytes", size)
        return cls(shm, handle)

    def close(self) -> None:
        """Close the mapping and unlink the name (idempotent)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"SharedCSR(name={self.handle.name!r}, {state})"


class AttachedCSR:
    """Worker-side attachment: a zero-copy CSR view over the mapped block.

    Keep this object alive as long as ``csr`` is in use — its
    memoryviews point straight into the mapping. :meth:`close` releases
    the views and the mapping; it never unlinks (the exporter owns the
    name).
    """

    __slots__ = ("csr", "_shm", "_views")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        csr: CSRGraph,
        views: tuple[memoryview, ...],
    ) -> None:
        self._shm = shm
        self.csr = csr
        self._views = views

    def close(self) -> None:
        for view in self._views:
            view.release()
        self._views = ()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a caller still holds a view
            pass


def attach(handle: SharedCSRHandle) -> AttachedCSR:  # lint: obs-ok runs before worker obs exists
    """Map an exported CSR view back into this process, zero-copy.

    Raises:
        FileNotFoundError: the exporter already unlinked the block.
        ValueError: the block was exported by an ABI with a different
            ``array('i')`` item size (cannot happen between a parent and
            the workers it spawned on the same interpreter).
    """
    if handle.itemsize != _INT_SIZE:
        raise ValueError(
            f"shared CSR uses {handle.itemsize}-byte ints, "
            f"this interpreter uses {_INT_SIZE}-byte ints"
        )
    shm = _attach_untracked(handle.name)
    split = handle.indptr_bytes
    indptr = shm.buf[:split].cast(_INT_FORMAT)
    neighbors = shm.buf[split : split + handle.neighbors_bytes].cast(_INT_FORMAT)
    if handle.labels is None:
        labels: list[Vertex] = list(range(handle.num_vertices))
    else:
        labels = list(handle.labels)
    csr = CSRGraph.from_buffers(indptr, neighbors, labels)
    return AttachedCSR(shm, csr, (indptr, neighbors))


# ----------------------------------------------------------------------
# Fixed-width result rows (worker -> parent, no pickling)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResultsHandle:
    """Picklable recipe for re-attaching a :class:`SharedResults` block."""

    name: str
    rows: int
    row_ints: int
    itemsize: int


def _destroy_results(
    shm: shared_memory.SharedMemory, views: list[memoryview], owner_pid: int
) -> None:
    """Finalizer body: release views, close + unlink in the owner only."""
    if os.getpid() != owner_pid:
        return
    for view in views:
        view.release()
    views.clear()
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked elsewhere
        pass


class SharedResults:
    """Parent-owned block of fixed-width int result rows.

    The parent assigns each dispatched task a distinct ``slot``; the
    worker evaluating it writes that row and nothing else, so rows are
    single-writer by construction. The parent reads rows back only
    after the dispatch barrier (``executor.map`` has returned), so no
    read ever races a write. Lifecycle mirrors :class:`SharedCSR`: the
    exporter owns close + unlink behind a pid-guarded finalizer,
    attachers stay invisible to the resource tracker.
    """

    __slots__ = ("handle", "_shm", "_view", "_views", "_finalizer", "__weakref__")

    def __init__(self, shm: shared_memory.SharedMemory, handle: ResultsHandle) -> None:
        self._shm = shm
        self.handle = handle
        self._view = shm.buf.cast(_INT_FORMAT)
        self._views = [self._view]
        self._finalizer = weakref.finalize(
            self, _destroy_results, shm, self._views, os.getpid()
        )

    @classmethod
    def create(cls, rows: int, row_ints: int) -> "SharedResults":
        """Allocate a zeroed block with ``rows`` rows of ``row_ints`` ints."""
        if rows < 1 or row_ints < 1:
            raise ValueError(f"need positive rows/row_ints, got {rows}x{row_ints}")
        size = rows * row_ints * _INT_SIZE
        shm = shared_memory.SharedMemory(create=True, size=size)
        handle = ResultsHandle(
            name=shm.name, rows=rows, row_ints=row_ints, itemsize=_INT_SIZE
        )
        _obs.gauge("shm.result_bytes", size)
        return cls(shm, handle)

    def row(self, slot: int) -> list[int]:
        """Read row ``slot`` as a plain int list (parent side, post-barrier)."""
        width = self.handle.row_ints
        start = slot * width
        return self._view[start : start + width].tolist()

    def close(self) -> None:
        """Release the view, close the mapping, unlink the name (idempotent)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"SharedResults(name={self.handle.name!r}, "
            f"{self.handle.rows}x{self.handle.row_ints}, {state})"
        )


class AttachedResults:
    """Worker-side attachment to a :class:`SharedResults` block.

    ``write_row`` is the only mutation workers perform on shared
    memory; each call targets the disjoint slot the parent assigned, so
    concurrent workers never overlap. :meth:`close` releases the view
    and the mapping; it never unlinks (the exporter owns the name).
    """

    __slots__ = ("handle", "_shm", "_view")

    def __init__(
        self, shm: shared_memory.SharedMemory, handle: ResultsHandle
    ) -> None:
        self._shm = shm
        self.handle = handle
        self._view = shm.buf.cast(_INT_FORMAT)

    def write_row(self, slot: int, values: "array[int]") -> None:
        """Write ``values`` at the start of row ``slot`` (single writer)."""
        start = slot * self.handle.row_ints
        self._view[start : start + len(values)] = values  # lint: race-ok disjoint slot per task, parent reads only after the dispatch barrier

    def close(self) -> None:
        view, self._view = self._view, None  # type: ignore[assignment]
        if view is not None:
            view.release()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a caller still holds a view
            pass


def attach_results(handle: ResultsHandle) -> AttachedResults:  # lint: obs-ok pure mapping attach, runs before worker obs exists
    """Map a parent's result block into this process (untracked attach).

    Raises:
        FileNotFoundError: the exporter already unlinked the block.
        ValueError: exported by an ABI with a different int size
            (cannot happen between a parent and its own workers).
    """
    if handle.itemsize != _INT_SIZE:
        raise ValueError(
            f"shared results use {handle.itemsize}-byte ints, "
            f"this interpreter uses {_INT_SIZE}-byte ints"
        )
    shm = _attach_untracked(handle.name)
    return AttachedResults(shm, handle)
