"""repro.parallel — shared-memory process-pool evaluation for GAC.

The per-round candidate scan of the greedy (Algorithm 6) is
embarrassingly parallel: each candidate's follower computation
(Algorithms 4/5) is read-only over the graph and independent of the
others. This package fans it out across worker processes while keeping
the package-wide determinism contract — ``workers=N`` returns the same
``GreedyResult`` (anchors, gains, tie-break order) and the same work
counters as the serial scan, for every ``N``:

* :mod:`repro.parallel.shm` — the graph travels once (interned CSR
  buffers exported to POSIX shared memory, attached zero-copy in each
  worker) and fixed-width result rows travel back the same way
  (:class:`SharedResults`), so neither direction pickles per task;
* :mod:`repro.parallel.worker` — per-process state (graph, persistent
  lineage-keyed anchored state advanced by incremental anchor deltas)
  plus the chunk evaluator, tracing/verification forced off, counter
  deltas shipped back per task;
* :mod:`repro.parallel.pool` — :class:`CandidateScanPool`, the parent's
  executor wrapper (chunked dispatch with latency-adaptive sizing,
  dispatch-ordered results, broken-pool detection);
* :mod:`repro.parallel.util` — worker-count resolution
  (``REPRO_PARALLEL``), chunk-size/result-channel knobs
  (``REPRO_PARALLEL_CHUNK`` / ``REPRO_PARALLEL_RESULTS``), the O(d)
  bucket h-index, chunking.

The deterministic two-phase scan that drives the pool lives in
:mod:`repro.anchors.gac`; the contract and the lifecycle are documented
in ``docs/parallelism.md``. Lint rule R8 keeps ``multiprocessing`` /
``concurrent.futures`` imports contained to this package.
"""

from typing import TYPE_CHECKING

from repro.parallel.util import (
    ENV_CHUNK,
    ENV_RESULTS,
    ENV_START,
    ENV_WORKERS,
    bucket_h_index,
    chunked,
    resolve_chunk_override,
    resolve_workers,
)

if TYPE_CHECKING:
    from repro.parallel.pool import CandidateScanPool, PoolUnavailable
    from repro.parallel.shm import (
        AttachedCSR,
        AttachedResults,
        ResultsHandle,
        SharedCSR,
        SharedCSRHandle,
        SharedResults,
        attach,
        attach_results,
    )

# The heavy halves (multiprocessing, shared memory, and the anchors
# modules the worker pulls in) load lazily via PEP 562 so that light
# consumers — repro.distributed borrowing the bucket h-index, the greedy
# resolving a worker count that turns out to be serial — never pay for
# them and never risk an import cycle through repro.anchors.
_LAZY = {
    "CandidateScanPool": "repro.parallel.pool",
    "PoolUnavailable": "repro.parallel.pool",
    "AttachedCSR": "repro.parallel.shm",
    "AttachedResults": "repro.parallel.shm",
    "ResultsHandle": "repro.parallel.shm",
    "SharedCSR": "repro.parallel.shm",
    "SharedCSRHandle": "repro.parallel.shm",
    "SharedResults": "repro.parallel.shm",
    "attach": "repro.parallel.shm",
    "attach_results": "repro.parallel.shm",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "ENV_CHUNK",
    "ENV_RESULTS",
    "ENV_START",
    "ENV_WORKERS",
    "AttachedCSR",
    "AttachedResults",
    "CandidateScanPool",
    "PoolUnavailable",
    "ResultsHandle",
    "SharedCSR",
    "SharedCSRHandle",
    "SharedResults",
    "attach",
    "attach_results",
    "bucket_h_index",
    "chunked",
    "resolve_chunk_override",
    "resolve_workers",
]
