"""Small deterministic helpers shared by the parallel layer (and friends).

Kept free of heavyweight imports so sibling modules (and
:mod:`repro.distributed`, which borrows :func:`bucket_h_index`) can pull
individual helpers without dragging in ``multiprocessing``.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence
from typing import TypeVar

T = TypeVar("T")

#: Worker-count environment knob read when ``workers=None`` is passed to
#: the greedy entry points (0 / unset / unparsable all mean serial).
ENV_WORKERS = "REPRO_PARALLEL"
#: Start-method override (``fork`` / ``spawn`` / ``forkserver``); unset
#: or unavailable falls back to ``fork`` where the platform has it.
ENV_START = "REPRO_PARALLEL_START"
#: Fixed executor chunk size override (positive int); unset / unparsable
#: means the pool adapts the size from measured per-task latency.
ENV_CHUNK = "REPRO_PARALLEL_CHUNK"
#: Result-channel override: ``pickle`` forces the legacy per-task pickle
#: return path instead of the shared-memory result rows (debug knob).
ENV_RESULTS = "REPRO_PARALLEL_RESULTS"


def resolve_chunk_override() -> int | None:  # lint: obs-ok trivial config resolution
    """The ``REPRO_PARALLEL_CHUNK`` override, or ``None`` for adaptive.

    Absent, empty, unparsable, or non-positive values all mean "adapt".
    """
    raw = os.environ.get(ENV_CHUNK, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def bucket_h_index(  # lint: obs-ok pure O(n) arithmetic
    values: Sequence[int],
) -> int:
    """The largest ``h`` such that at least ``h`` values are ``>= h``.

    O(len) counting-sort formulation: a value ``v`` can only support
    h-indices up to ``min(v, n)``, so it is bucketed there and the
    buckets are scanned from ``n`` downward until the suffix count
    reaches ``h``. Replaces the O(d log d) sort the simulated
    distributed decomposition previously paid per vertex per round.
    """
    n = len(values)
    if n == 0:
        return 0
    counts = [0] * (n + 1)
    for value in values:
        if value > 0:
            counts[value if value < n else n] += 1
    total = 0
    for h in range(n, 0, -1):
        total += counts[h]
        if total >= h:
            return h
    return 0


def chunked(  # lint: obs-ok pure slicing generator
    items: Sequence[T], size: int
) -> Iterator[Sequence[T]]:
    """Successive slices of ``items`` of length ``size`` (last may be short)."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    for start in range(0, len(items), size):
        yield items[start : start + size]


def resolve_workers(  # lint: obs-ok trivial config resolution
    workers: int | None,
) -> int:
    """Effective worker count: the explicit argument, else ``REPRO_PARALLEL``.

    ``None`` defers to the environment; absent, empty, unparsable, or
    negative values resolve to 0 (serial). Explicit negatives clamp to 0
    as well so callers can treat the result as a plain count.
    """
    if workers is not None:
        return max(workers, 0)
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return 0
    try:
        value = int(raw)
    except ValueError:
        return 0
    return max(value, 0)
