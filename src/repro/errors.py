"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class AnchorNotFoundError(GraphError):
    """Raised when an anchor set references vertices absent from the graph.

    Deliberately *not* a ``KeyError`` subclass: an absent anchor is a
    caller contract violation detected up front, not a failed lookup
    deep inside an algorithm.
    """

    def __init__(self, missing: "list[object]") -> None:
        shown = ", ".join(repr(a) for a in missing[:5])
        suffix = f" (and {len(missing) - 5} more)" if len(missing) > 5 else ""
        super().__init__(f"anchor vertices not in the graph: {shown}{suffix}")
        self.missing = list(missing)


class VerificationError(ReproError, AssertionError):
    """Raised by :mod:`repro.verify` when a runtime invariant fails.

    Also an ``AssertionError`` so test harnesses that treat assertion
    failures specially (e.g. pytest rewriting, ``-O`` awareness
    audits) classify it correctly.
    """


class DatasetError(ReproError):
    """Raised when a dataset cannot be built or loaded."""


class BudgetError(ReproError, ValueError):
    """Raised when an anchoring budget is invalid for the given graph."""


class ParseError(ReproError, ValueError):
    """Raised when an edge-list file cannot be parsed."""


class CheckpointError(ReproError):
    """Raised when a checkpoint file cannot be read, or does not match the run.

    A resume must never silently continue from the wrong snapshot: a
    missing/corrupt file, a version mismatch, a different algorithm, a
    different graph (fingerprint), or different algorithm parameters all
    abort with this error instead of producing a subtly divergent run.
    """
