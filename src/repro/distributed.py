"""Simulated distributed core decomposition (Montresor et al., TPDS'13).

The paper closes by noting that the locality in its tree-based reuse
"may also inspire efficient parallel and distributed solutions". This
module simulates the canonical distributed algorithm that exploits
exactly that locality: one node per vertex, synchronous message rounds,
each node repeatedly lowering its coreness estimate to the h-index of
its neighbors' estimates. Estimates start at the degree, only decrease,
and converge to the true coreness — the number of rounds is the
locality measure the literature reports.

The simulation is deterministic and instruments per-round message
counts so convergence behaviour can be benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.graph import Graph, Vertex
from repro.parallel.util import bucket_h_index


def h_index(values: list[int]) -> int:
    """The largest ``h`` such that at least ``h`` values are >= ``h``.

    Delegates to the O(d) counting formulation in
    :func:`repro.parallel.util.bucket_h_index`; the per-vertex per-round
    sort it replaces dominated the simulated rounds on dense graphs.
    """
    return bucket_h_index(values)


@dataclass
class DistributedRun:
    """Trace of a simulated distributed decomposition.

    Attributes:
        estimates: final per-vertex estimates (= coreness on convergence).
        rounds: number of synchronous rounds until no estimate changed.
        messages_per_round: messages sent in each round (one per edge
            endpoint whose estimate changed since the previous round).
    """

    estimates: dict[Vertex, int]
    rounds: int
    messages_per_round: list[int] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_round)


def distributed_core_decomposition(
    graph: Graph, max_rounds: int | None = None
) -> DistributedRun:
    """Run the synchronous h-index iteration to a fixed point.

    Every vertex starts with ``estimate = degree`` and, each round,
    replaces it with the h-index of its neighbors' current estimates
    (clamped to never increase). The fixed point of this iteration is
    exactly the coreness (Lübben/Montresor locality theorem).

    Args:
        graph: the input graph.
        max_rounds: optional safety cap; ``None`` runs to convergence
            (guaranteed within O(n) rounds since estimates only shrink).

    Returns:
        A :class:`DistributedRun`; ``estimates`` equals the coreness of
        every vertex when the run converged.
    """
    estimates: dict[Vertex, int] = {u: graph.degree(u) for u in graph.vertices()}
    changed: set[Vertex] = set(graph.vertices())
    rounds = 0
    messages: list[int] = []
    while changed:
        if max_rounds is not None and rounds >= max_rounds:
            break
        rounds += 1
        # a node broadcasts to its neighbors only when its estimate moved
        messages.append(sum(graph.degree(u) for u in changed))
        # nodes whose neighborhood contains a changed node must recompute
        dirty: set[Vertex] = set(changed)
        for u in changed:
            dirty |= graph.neighbors(u)
        next_changed: set[Vertex] = set()
        updates: dict[Vertex, int] = {}
        for u in dirty:
            new = min(
                estimates[u],
                h_index([estimates[v] for v in graph.neighbors(u)]),
            )
            if new != estimates[u]:
                updates[u] = new
                next_changed.add(u)
        estimates.update(updates)
        changed = next_changed
    return DistributedRun(
        estimates=estimates, rounds=rounds, messages_per_round=messages
    )
