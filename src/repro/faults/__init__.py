"""repro.faults — deterministic fault injection for robustness testing.

A stdlib-only layer that can raise or delay at named *sites* in the
production code (worker task pickup, shm attach, follower evaluation,
checkpoint writes, round commits — see :func:`catalog`). Armed via the
``REPRO_FAULTS`` env var or a ``faults=`` kwarg on the greedy entry
points; disarmed it costs one ``None`` check and one env lookup per
site visit. Every armed visit and injection is counted in the obs
registry (``faults.visited.<site>`` / ``faults.injected.<site>``).

Lint rule R9 keeps ``repro.faults`` imports contained: production
modules host :func:`fault_point` calls only at the registered sites,
each import line carrying an explicit ``# lint: fault-ok`` waiver.

See ``docs/fault-injection.md`` for the site catalog, the spec grammar,
and how the fault matrix in ``tests/test_faults.py`` enforces coverage.
"""

from repro.faults.runtime import (
    ENV_FAULTS,
    INJECTED_PREFIX,
    VISITED_PREFIX,
    FaultInjected,
    FaultPlan,
    FaultRule,
    FaultSite,
    FaultSpecError,
    arming,
    catalog,
    fault_point,
    lookup,
    reset,
    site_names,
)

__all__ = [
    "ENV_FAULTS",
    "INJECTED_PREFIX",
    "VISITED_PREFIX",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "FaultSite",
    "FaultSpecError",
    "arming",
    "catalog",
    "fault_point",
    "lookup",
    "reset",
    "site_names",
]
