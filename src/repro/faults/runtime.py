"""Deterministic, seedable fault injection (stdlib-only).

Production code calls :func:`fault_point` at the registered sites
(:mod:`repro.faults.sites`). Disabled — no kwarg-armed plan and no
``REPRO_FAULTS`` — a fault point is one module-global ``None`` check
plus one env lookup, cheap enough for code that runs once per round or
per task (no site sits inside the per-candidate inner loop).

Arming, two ways:

* ``faults=`` kwarg on the greedy entry points — a spec string or a
  :class:`FaultPlan`, installed for that run via :func:`arming`. A
  fresh plan means fresh hit counters: per-run deterministic.
* the ``REPRO_FAULTS`` environment variable — parsed once per spec
  string and cached, so hit counters accumulate across runs in the
  same process (and are inherited by pool workers, which re-read the
  env after fork/spawn). Use :func:`reset` between runs that need
  independent counting.

Spec grammar (comma-separated ``site=action`` clauses)::

    REPRO_FAULTS="worker.task_start=raise,gac.round_commit=raise@3"
    REPRO_FAULTS="worker.follower_eval=delay:0.005,parallel.dispatch=p:0.25:7"

Actions:

* ``raise`` / ``raise@N`` — raise :class:`FaultInjected` on every hit /
  on exactly the Nth hit (1-based) of the site;
* ``delay:S`` — sleep ``S`` seconds at every hit (timeout simulation);
* ``p:P`` / ``p:P:SEED`` — raise with probability ``P`` per hit, drawn
  from a dedicated ``random.Random(SEED)`` (default seed 0) so the hit
  sequence is reproducible and never touches algorithm RNG streams.

Unknown sites or malformed actions raise :class:`FaultSpecError` at
parse time — a typo in a fault spec must never silently disarm a test.
Every visit to an armed site counts ``faults.visited.<site>`` in the
obs registry, and every injection counts ``faults.injected.<site>``.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro import obs as _obs
from repro.errors import ReproError
from repro.faults.sites import FaultSite, catalog, lookup, site_names

ENV_FAULTS = "REPRO_FAULTS"

#: Obs counter name prefixes (``faults.visited.<site>``, ``faults.injected.<site>``).
VISITED_PREFIX = "faults.visited."
INJECTED_PREFIX = "faults.injected."


class FaultInjected(ReproError, RuntimeError):
    """Raised by an armed ``raise`` / ``p`` rule at its fault site."""

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"injected fault at {site!r} (hit {hit})")
        self.site = site
        self.hit = hit

    def __reduce__(self) -> tuple[type, tuple[str, int]]:
        # Default exception pickling would replay __init__ with the
        # formatted message as ``site``; workers ship this exception
        # across the process boundary, so rebuild from the real fields.
        return (type(self), (self.site, self.hit))


class FaultSpecError(ReproError, ValueError):
    """Raised for malformed ``REPRO_FAULTS`` / ``faults=`` specs."""


@dataclass
class FaultRule:
    """One armed action at one site (holds the site's hit counter)."""

    site: str
    action: str  # "raise" | "delay" | "p"
    nth: int | None = None  # raise@N: fire on exactly the Nth hit
    seconds: float = 0.0  # delay:S
    probability: float = 0.0  # p:P
    rng: random.Random | None = None  # p-rules draw from a dedicated stream
    hits: int = 0

    def visit(self) -> None:
        """Count one arrival at the site and apply the armed action."""
        self.hits += 1
        _obs.add(VISITED_PREFIX + self.site)
        if self.action == "delay":
            _obs.add(INJECTED_PREFIX + self.site)
            time.sleep(self.seconds)
            return
        if self.action == "raise":
            if self.nth is not None and self.hits != self.nth:
                return
        elif self.action == "p":
            assert self.rng is not None  # parse() always seeds one
            if self.rng.random() >= self.probability:
                return
        _obs.add(INJECTED_PREFIX + self.site)
        raise FaultInjected(self.site, self.hits)


@dataclass
class FaultPlan:
    """A parsed set of rules, at most one per site."""

    rules: dict[str, FaultRule] = field(default_factory=dict)
    spec: str = ""

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``site=action[,site=action...]`` spec (strict)."""
        plan = cls(spec=spec)
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            site, sep, action = clause.partition("=")
            site = site.strip()
            if not sep or not action.strip():
                raise FaultSpecError(
                    f"malformed fault clause {clause!r}: expected site=action"
                )
            if lookup(site) is None:
                raise FaultSpecError(
                    f"unknown fault site {site!r}; registered sites: "
                    + ", ".join(site_names())
                )
            if site in plan.rules:
                raise FaultSpecError(f"fault site {site!r} armed twice in {spec!r}")
            plan.rules[site] = _parse_action(site, action.strip())
        return plan

    def visit(self, site: str) -> None:
        rule = self.rules.get(site)
        if rule is not None:
            rule.visit()


def _parse_action(site: str, action: str) -> FaultRule:
    head, _, rest = action.partition(":")
    if head == "raise" or head.startswith("raise@"):
        if rest:
            raise FaultSpecError(f"raise takes no ':' argument, got {action!r}")
        nth: int | None = None
        if head.startswith("raise@"):
            try:
                nth = int(head[len("raise@") :])
            except ValueError as exc:
                raise FaultSpecError(f"malformed raise@N in {action!r}") from exc
            if nth < 1:
                raise FaultSpecError(f"raise@N needs N >= 1, got {nth}")
        return FaultRule(site=site, action="raise", nth=nth)
    if head == "delay":
        try:
            seconds = float(rest)
        except ValueError as exc:
            raise FaultSpecError(f"malformed delay seconds in {action!r}") from exc
        if seconds < 0:
            raise FaultSpecError(f"delay needs seconds >= 0, got {seconds}")
        return FaultRule(site=site, action="delay", seconds=seconds)
    if head == "p":
        parts = rest.split(":") if rest else []
        if len(parts) not in (1, 2):
            raise FaultSpecError(f"p takes p:P or p:P:SEED, got {action!r}")
        try:
            probability = float(parts[0])
            seed = int(parts[1]) if len(parts) == 2 else 0
        except ValueError as exc:
            raise FaultSpecError(f"malformed p rule {action!r}") from exc
        if not 0.0 <= probability <= 1.0:
            raise FaultSpecError(f"p needs probability in [0, 1], got {probability}")
        return FaultRule(
            site=site, action="p", probability=probability, rng=random.Random(seed)
        )
    raise FaultSpecError(
        f"unknown fault action {action!r} for site {site!r}; "
        "expected raise[@N], delay:S, or p:P[:SEED]"
    )


# The kwarg-armed plan (per-run) and the env-plan cache (process-global:
# hit counters survive across runs until the spec changes or reset()).
_active: FaultPlan | None = None
_env_spec: str | None = None
_env_plan: FaultPlan | None = None


def _plan_for_env(spec: str) -> FaultPlan:
    global _env_spec, _env_plan
    if spec != _env_spec or _env_plan is None:
        _env_plan = FaultPlan.parse(spec)
        _env_spec = spec
    return _env_plan


def fault_point(site: str) -> None:
    """Apply any armed rule for ``site`` (near-free when nothing is armed)."""
    if _active is not None:
        _active.visit(site)
        return
    spec = os.environ.get(ENV_FAULTS)
    if spec:
        _plan_for_env(spec).visit(site)


@contextmanager
def arming(plan: "FaultPlan | str | None") -> Iterator[None]:
    """Install ``plan`` (or parse a spec string) for the block.

    ``None`` leaves the environment-driven behavior untouched, which
    lets APIs thread a ``faults=`` kwarg straight through (mirroring
    ``repro.verify.verification``). A kwarg-armed plan *replaces* the
    env plan for the block — the two never stack.
    """
    global _active
    if plan is None:
        yield
        return
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    previous = _active
    _active = plan
    try:
        yield
    finally:
        _active = previous


def reset() -> None:
    """Drop the cached env plan (fresh hit counters on the next visit)."""
    global _env_spec, _env_plan
    _env_spec = None
    _env_plan = None


__all__ = [
    "ENV_FAULTS",
    "INJECTED_PREFIX",
    "VISITED_PREFIX",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "FaultSite",
    "FaultSpecError",
    "arming",
    "catalog",
    "fault_point",
    "lookup",
    "reset",
    "site_names",
]
