"""The fault-site catalog: every place the runtime can be made to fail.

A :class:`FaultSite` is a *named* point in the production code where
:func:`repro.faults.fault_point` is called. The catalog is the single
source of truth for which sites exist; ``tests/test_faults.py``
parametrizes over :func:`catalog` so a site added here without a test
fails CI loudly, and ``python -m repro faults`` prints it for humans.

Sites are grouped by the failure domain they exercise:

* ``parallel`` sites live on the worker-pool path; injecting there must
  leave the run's *result* unchanged — the greedy falls back to the
  serial scan (``gac.parallel_fallback.scan_error``) or the pool close
  is swallowed (``parallel.close_error``);
* checkpoint sites exercise persistence: a failed write is survivable
  (the run continues, gauged), a failed load is not (resume aborts);
* ``round_commit`` sites sit at the greedy round boundary — arming them
  with ``raise@N`` simulates a kill after round ``N``'s checkpoint, the
  scenario the resume machinery exists for.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultSite:
    """One registered injection point.

    Attributes:
        name: the site id used in ``REPRO_FAULTS`` specs (``<area>.<what>``).
        description: what failing here simulates.
        host: the module containing the ``fault_point`` call.
        parallel: True when the site only fires on the worker-pool path
            (needs ``workers >= 2`` and a healthy pool to be reachable).
    """

    name: str
    description: str
    host: str
    parallel: bool = False


_SITES: tuple[FaultSite, ...] = (
    FaultSite(
        name="worker.shm_attach",
        description="worker fails to attach the shared-memory CSR export "
        "(pool never becomes healthy; greedy stays serial)",
        host="repro.parallel.worker",
        parallel=True,
    ),
    FaultSite(
        name="worker.task_start",
        description="worker dies at task pickup (mid-scan crash; the round "
        "falls back to the serial scan)",
        host="repro.parallel.worker",
        parallel=True,
    ),
    FaultSite(
        name="worker.follower_eval",
        description="follower computation fails inside a worker (corrupt "
        "evaluation; the round falls back to the serial scan)",
        host="repro.parallel.worker",
        parallel=True,
    ),
    FaultSite(
        name="parallel.dispatch",
        description="parent-side dispatch of a task batch fails before "
        "anything ships (the round falls back to the serial scan)",
        host="repro.parallel.pool",
        parallel=True,
    ),
    FaultSite(
        name="shm.exporter_finalize",
        description="releasing the shared-memory export fails at pool "
        "shutdown (swallowed; gauged as parallel.close_error)",
        host="repro.parallel.pool",
        parallel=True,
    ),
    FaultSite(
        name="checkpoint.write",
        description="the round-boundary checkpoint cannot be written (the "
        "run continues un-checkpointed; gauged per algorithm)",
        host="repro.checkpoint",
    ),
    FaultSite(
        name="checkpoint.load",
        description="a resume file cannot be read (resume aborts with "
        "CheckpointError; nothing runs)",
        host="repro.checkpoint",
    ),
    FaultSite(
        name="gac.round_commit",
        description="the GAC process dies right after a round's checkpoint "
        "write (arm with raise@N to simulate a kill after round N)",
        host="repro.anchors.gac",
    ),
    FaultSite(
        name="olak.round_commit",
        description="the OLAK process dies right after a round's checkpoint "
        "write (arm with raise@N to simulate a kill after round N)",
        host="repro.olak.olak",
    ),
)

_BY_NAME: dict[str, FaultSite] = {site.name: site for site in _SITES}


def catalog() -> tuple[FaultSite, ...]:
    """Every registered fault site, in a stable (registration) order."""
    return _SITES


def site_names() -> tuple[str, ...]:
    """The registered site names, in catalog order."""
    return tuple(site.name for site in _SITES)


def lookup(name: str) -> FaultSite | None:
    """The site registered under ``name``, or ``None``."""
    return _BY_NAME.get(name)
