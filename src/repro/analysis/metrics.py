"""Analysis metrics for anchor sets and follower sets (Section 5.1).

Implements the measurements behind Table 6 (anchor characteristics),
Table 7 (solution similarity), and Figures 8/11 (coreness
distributions of anchors and followers).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Collection, Iterable
from dataclasses import dataclass

from repro.core.decomposition import _sort_key, core_decomposition, peel_decomposition
from repro.core.layers import all_successive_degrees
from repro.graphs.graph import Graph, Vertex


@dataclass(frozen=True)
class AnchorCharacteristics:
    """Table 6's row for one dataset/anchor set.

    Attributes:
        degree_avg: mean degree over all vertices (``Deg_avg``).
        degree_anchors: mean degree of the anchors (``Deg_anc``).
        p_degree: mean percentile rank of anchors by degree (``p_Deg``).
        p_coreness: mean percentile rank by coreness (``p_CN``).
        p_successive_degree: mean percentile rank by successive degree
            (``p_SD``).
    """

    degree_avg: float
    degree_anchors: float
    p_degree: float
    p_coreness: float
    p_successive_degree: float


def _percentile_rank(scores: dict[Vertex, float], anchors: Collection[Vertex]) -> float:
    """Mean rank of anchors in ascending score order, as a fraction of n.

    ``p = sum(O_x) / (|A| * n)`` exactly as the paper defines it; tied
    scores take their average rank so the statistic is order-independent.
    """
    if not anchors:
        return 0.0
    ordered = sorted(scores, key=lambda u: (scores[u], _sort_key(u)))
    rank_of: dict[Vertex, float] = {}
    i = 0
    while i < len(ordered):
        j = i
        while j + 1 < len(ordered) and scores[ordered[j + 1]] == scores[ordered[i]]:
            j += 1
        avg_rank = (i + j) / 2 + 1  # 1-based average rank of the tie group
        for idx in range(i, j + 1):
            rank_of[ordered[idx]] = avg_rank
        i = j + 1
    n = len(ordered)
    return sum(rank_of[x] for x in anchors) / (len(anchors) * n)


def anchor_characteristics(
    graph: Graph, anchors: Collection[Vertex]
) -> AnchorCharacteristics:
    """Compute the Table 6 statistics for an anchor set."""
    decomposition = peel_decomposition(graph)
    degrees = {u: float(graph.degree(u)) for u in graph.vertices()}
    coreness = {u: float(c) for u, c in decomposition.coreness.items()}
    successive = {
        u: float(s) for u, s in all_successive_degrees(graph, decomposition).items()
    }
    degree_avg = sum(degrees.values()) / max(len(degrees), 1)
    degree_anchors = (
        sum(degrees[x] for x in anchors) / len(anchors) if anchors else 0.0
    )
    return AnchorCharacteristics(
        degree_avg=degree_avg,
        degree_anchors=degree_anchors,
        p_degree=_percentile_rank(degrees, anchors),
        p_coreness=_percentile_rank(coreness, anchors),
        p_successive_degree=_percentile_rank(successive, anchors),
    )


def jaccard_index(a: Iterable[Vertex], b: Iterable[Vertex]) -> float:
    """``|A ∩ B| / |A ∪ B|`` (Table 7's solution similarity)."""
    sa, sb = set(a), set(b)
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def coreness_distribution(
    graph: Graph, vertices: Iterable[Vertex]
) -> dict[int, int]:
    """How many of ``vertices`` sit at each coreness value (Figs 8/11).

    Coreness is measured in the *unanchored* graph — the paper plots the
    anchors' and followers' original coreness values.
    """
    decomposition = core_decomposition(graph)
    counts = Counter(decomposition.coreness[u] for u in vertices)
    return dict(sorted(counts.items()))


def distribution_spread(distribution: dict[int, int]) -> int:
    """Number of distinct coreness values covered (diversity headline).

    The paper's Figure 8 point is qualitative: GAC anchors spread across
    many coreness values while OLAK(k) anchors pin at < k. This scalar
    makes the comparison assertable in tests and benches.
    """
    return sum(1 for count in distribution.values() if count > 0)
