"""Analysis metrics: anchor characteristics, similarity, distributions, stats."""

from repro.analysis.correlation import pearson, spearman
from repro.analysis.onion import OnionSpectrum, onion_spectrum
from repro.analysis.metrics import (
    AnchorCharacteristics,
    anchor_characteristics,
    coreness_distribution,
    distribution_spread,
    jaccard_index,
)
from repro.analysis.stats import GraphStats, graph_stats

__all__ = [
    "AnchorCharacteristics",
    "GraphStats",
    "OnionSpectrum",
    "anchor_characteristics",
    "coreness_distribution",
    "distribution_spread",
    "graph_stats",
    "jaccard_index",
    "onion_spectrum",
    "pearson",
    "spearman",
]
