"""Correlation statistics for the engagement analyses (Figures 1 and 9).

Dependency-free Pearson and Spearman implementations — the library's
check-in experiments quantify "coreness tracks engagement" with these
instead of eyeballing curves.
"""

from __future__ import annotations

from collections.abc import Sequence


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (0.0 for degenerate inputs)."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        return 0.0
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs) ** 0.5
    vy = sum((y - my) ** 2 for y in ys) ** 0.5
    if vx == 0.0 or vy == 0.0:  # lint: float-eq-ok exact-zero degenerate guard
        return 0.0
    return cov / (vx * vy)


def _average_ranks(values: Sequence[float]) -> list[float]:
    """1-based ranks with ties assigned their average rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2 + 1
        for idx in range(i, j + 1):
            ranks[order[idx]] = avg
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson on average ranks)."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    return pearson(_average_ranks(xs), _average_ranks(ys))
