"""Onion spectrum — a network portrait built on the shell layers.

The shell-layer pairs of Section 4.4 are exactly the *onion
decomposition* of Hébert-Dufresne et al. (2016): within each k-shell,
the deletion batches form layers whose sizes profile how "crusty" or
"dense-centered" a network is. Since the anchored-coreness machinery
already computes the layers, the spectrum comes for free and gives the
replica datasets a structural fingerprint to compare against real
networks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decomposition import CoreDecomposition, peel_decomposition
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class OnionSpectrum:
    """Layer-size profile of a graph.

    Attributes:
        layer_sizes: ``(k, i) -> |H_k^i|`` for every non-empty layer.
        total_layers: number of non-empty layers over all shells.
    """

    layer_sizes: dict[tuple[int, int], int]

    @property
    def total_layers(self) -> int:
        return len(self.layer_sizes)

    def shell_profile(self, k: int) -> list[int]:
        """Layer sizes of one shell, in layer order."""
        entries = sorted(
            (i, size) for (kk, i), size in self.layer_sizes.items() if kk == k
        )
        return [size for _, size in entries]

    def layers_per_shell(self) -> dict[int, int]:
        """How many deletion batches each shell took."""
        counts: dict[int, int] = {}
        for (k, _), _size in self.layer_sizes.items():
            counts[k] = counts.get(k, 0) + 1
        return dict(sorted(counts.items()))

    def mean_layer_depth(self) -> float:
        """Average layer index weighted by layer size.

        Tree-like peripheries peel in many thin layers (large depth);
        dense cores collapse in one or two batches (depth near 1).
        """
        total = sum(self.layer_sizes.values())
        if total == 0:
            return 0.0
        weighted = sum(i * size for (_, i), size in self.layer_sizes.items())
        return weighted / total


def onion_spectrum(
    graph: Graph, decomposition: CoreDecomposition | None = None
) -> OnionSpectrum:
    """Compute the onion spectrum (reuses a peel decomposition if given)."""
    if decomposition is None or not decomposition.shell_layer:
        decomposition = peel_decomposition(graph)
    sizes: dict[tuple[int, int], int] = {}
    for u, pair in decomposition.shell_layer.items():
        if u in decomposition.anchors:
            continue
        sizes[pair] = sizes.get(pair, 0) + 1
    return OnionSpectrum(layer_sizes=dict(sorted(sizes.items())))
