"""Dataset statistics (Table 4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decomposition import core_decomposition
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class GraphStats:
    """One row of Table 4."""

    nodes: int
    edges: int
    degree_avg: float
    degree_max: int
    k_max: int


def graph_stats(graph: Graph) -> GraphStats:
    """Compute n, m, d_avg, d_max, k_max for a graph."""
    decomposition = core_decomposition(graph)
    return GraphStats(
        nodes=graph.num_vertices,
        edges=graph.num_edges,
        degree_avg=graph.average_degree(),
        degree_max=graph.max_degree(),
        k_max=decomposition.max_coreness,
    )
